//! Engine-throughput experiment: messages/second of the sharded arena
//! engine vs the preserved legacy reference engine, on the real FFT and
//! Columnsort programs, for `v = 2^10 .. 2^16`, with a thread-scaling
//! column (1, 2, 4, … executor workers). Emits a machine-readable
//! `BENCH_engine.json` so future PRs can track the perf trajectory
//! (`scripts/bench_compare.sh` diffs two such files).
//!
//! Usage: `cargo run --release -p nob-bench --bin exp_engine_throughput
//! [max_log_v] [out_path]` (defaults: 16, `BENCH_engine.json`).
//!
//! The executor width is pinned per row via `RunOptions::workers`, so one
//! process covers the whole scaling column; the rayon pool width (reported
//! per row, overridable with `NOB_THREADS`) only affects the reference
//! engine's internal parallelism and the engine's *default* width. The
//! `threads = 1` rows take the serial path and are directly comparable to
//! the PR-1 single-core baseline.

use nob_algos::fft::BinaryExchangeFft;
use nob_algos::sort::ColumnSort;
use nob_bench::{random_keys, test_signal};
use nob_machine::reference::run_reference;
use nob_machine::{run, NobAlgorithm, Program, RunOptions};
use std::fmt::Write as _;
use std::time::Instant;

/// Peak resident set size so far, in kB (`VmHWM`: a process-lifetime
/// high-water mark, so per-size readings are cumulative maxima).
fn peak_rss_kb() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|l| l.trim().trim_end_matches("kB").trim().parse().ok())
        .unwrap_or(0)
}

/// Logical CPUs visible to this process (cgroup-quota aware) — an upper
/// bound on usable hardware parallelism, not a physical-core count.
fn available_cpus() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

#[derive(Clone)]
struct Measurement {
    secs: f64,
    messages: u64,
    supersteps: usize,
}

impl Measurement {
    fn msgs_per_sec(&self) -> f64 {
        self.messages as f64 / self.secs
    }
}

/// Times `engine` over enough repetitions to exceed ~200ms, returning the
/// best (fastest) repetition — the standard noise-resistant estimator.
fn measure<S: Clone + Send, M: Send>(
    prog: &Program<S, M>,
    states: &[S],
    engine: impl Fn(&Program<S, M>, Vec<S>) -> nob_machine::RunResult<S>,
) -> Measurement {
    let mut best = f64::INFINITY;
    let mut messages = 0;
    let mut supersteps = 0;
    let mut spent = 0.0f64;
    let mut reps = 0u32;
    while reps < 3 || (spent < 0.2 && reps < 50) {
        let input = states.to_vec();
        let start = Instant::now();
        let res = engine(prog, input);
        let secs = start.elapsed().as_secs_f64();
        spent += secs;
        best = best.min(secs);
        messages = res.trace.total_messages();
        supersteps = res.trace.superstep_count();
        reps += 1;
    }
    Measurement { secs: best, messages, supersteps }
}

struct Row {
    v: usize,
    program: &'static str,
    /// Executor workers pinned for this row (`RunOptions::workers`).
    threads: usize,
    arena: Measurement,
    reference: Measurement,
    peak_rss_kb: u64,
}

fn bench_program<A>(
    alg: &A,
    name: &'static str,
    n: usize,
    input: &A::Input,
    widths: &[usize],
    rows: &mut Vec<Row>,
) where
    A: NobAlgorithm,
    A::State: Clone + PartialEq + std::fmt::Debug,
{
    let prog = alg.build(n);
    let states = alg.init(n, input);
    let base = RunOptions::default();
    // Cross-check once before timing: serial, widest sharded, and the
    // reference engine must agree exactly.
    let serial = run(&prog, states.clone(), &serial_opts()).unwrap();
    let r = run_reference(&prog, states.clone(), &base).unwrap();
    assert_eq!(serial.states, r.states, "{name}: engines disagree on states at v = {n}");
    assert_eq!(serial.trace, r.trace, "{name}: engines disagree on trace at v = {n}");
    let widest = widths.iter().copied().max().unwrap_or(1);
    let sh = run(&prog, states.clone(), &worker_opts(widest)).unwrap();
    assert_eq!(sh.states, serial.states, "{name}: sharded states diverge at v = {n}");
    assert_eq!(sh.trace, serial.trace, "{name}: sharded trace diverges at v = {n}");

    let reference = measure(&prog, &states, |p, s| run_reference(p, s, &base).unwrap());
    for &w in widths {
        let opts = worker_opts(w);
        let arena = measure(&prog, &states, |p, s| run(p, s, &opts).unwrap());
        let row = Row {
            v: n,
            program: name,
            threads: w,
            arena,
            reference: reference.clone(),
            peak_rss_kb: peak_rss_kb(),
        };
        eprintln!(
            "v={:<6} {:<5} w={} arena {:>10.0} msg/s | reference {:>10.0} msg/s | speedup {:.2}x",
            row.v,
            row.program,
            row.threads,
            row.arena.msgs_per_sec(),
            row.reference.msgs_per_sec(),
            row.arena.msgs_per_sec() / row.reference.msgs_per_sec(),
        );
        rows.push(row);
    }
}

fn serial_opts() -> RunOptions {
    RunOptions { workers: Some(1), ..Default::default() }
}

fn worker_opts(w: usize) -> RunOptions {
    RunOptions { workers: Some(w), ..Default::default() }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let max_log_v: u32 = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(16);
    let out_path = args.get(2).cloned().unwrap_or_else(|| "BENCH_engine.json".to_string());
    let cpus = available_cpus();
    // Thread-scaling column: 1, 2, 4, … up to at least 4 (so the scaling
    // shape is recorded even on narrow containers) and up to the next
    // power of two covering the machine.
    let mut widths = vec![1usize];
    while *widths.last().unwrap() < 4.max(cpus) {
        widths.push(widths.last().unwrap() * 2);
    }

    let mut rows = Vec::new();
    for log_v in 10..=max_log_v {
        let v = 1usize << log_v;
        let signal = test_signal(v);
        bench_program(&BinaryExchangeFft, "fft", v, &signal[..], &widths, &mut rows);
        let keys = random_keys(v, 42);
        bench_program(&ColumnSort::<u64>::default(), "sort", v, &keys[..], &widths, &mut rows);
    }

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"bench\": \"engine_throughput\",").unwrap();
    writeln!(json, "  \"pool_threads\": {},", rayon::current_num_threads()).unwrap();
    writeln!(json, "  \"available_cpus\": {cpus},").unwrap();
    writeln!(json, "  \"validate\": {},", RunOptions::default().validate).unwrap();
    writeln!(json, "  \"note\": \"threads = executor workers pinned via RunOptions::workers (1 = serial path, comparable to the PR-1 arena baseline); peak_rss_kb is the process VmHWM high-water mark, cumulative across rows\",").unwrap();
    writeln!(json, "  \"rows\": [").unwrap();
    for (i, row) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        writeln!(
            json,
            "    {{\"v\": {}, \"program\": \"{}\", \"threads\": {}, \"supersteps\": {}, \"messages_per_run\": {}, \
             \"arena_secs\": {:.6}, \"arena_msgs_per_sec\": {:.0}, \
             \"reference_secs\": {:.6}, \"reference_msgs_per_sec\": {:.0}, \
             \"speedup\": {:.3}, \"peak_rss_kb\": {}}}{}",
            row.v,
            row.program,
            row.threads,
            row.arena.supersteps,
            row.arena.messages,
            row.arena.secs,
            row.arena.msgs_per_sec(),
            row.reference.secs,
            row.reference.msgs_per_sec(),
            row.arena.msgs_per_sec() / row.reference.msgs_per_sec(),
            row.peak_rss_kb,
            comma,
        )
        .unwrap();
    }
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();
    std::fs::write(&out_path, &json).expect("write BENCH_engine.json");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
