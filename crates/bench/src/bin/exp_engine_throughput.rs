//! Engine-throughput experiment: messages/second of the sharded arena
//! engine vs the preserved legacy reference engine, on the real FFT and
//! Columnsort programs plus a fully *dynamic* butterfly, for
//! `v = 2^10 .. 2^16`, with a thread-scaling column (1, 2, 4, … executor
//! workers) and four engine configurations per row:
//!
//! * `plan_msgs_per_sec` — declared plans, fusion **off**: the PR-5
//!   one-barrier protocol, kept directly comparable to older baselines.
//! * `fused_msgs_per_sec` — declared plans, fusion **on**: shard-local
//!   planned steps skip barriers and size arenas from the `O(1)` layout.
//! * `captured_msgs_per_sec` — the program's dynamic steps
//!   record-and-replayed via `Program::capture_plans` (100% planned),
//!   fusion on: the engine's best mode. For fft/sort (fully declared)
//!   capture is a no-op and this column documents captured-replay parity;
//!   for `bfly-dyn` (zero declared routes) it *is* the capture win.
//! * `arena_msgs_per_sec` — plans disabled, the dynamic path, comparable
//!   to pre-plan baselines.
//!
//! Emits a machine-readable `BENCH_engine.json` so future PRs can track
//! the perf trajectory (`scripts/bench_compare.sh` diffs two such files,
//! including the plan column when both runs have it).
//!
//! Usage: `cargo run --release -p nob-bench --bin exp_engine_throughput
//! [max_log_v] [out_path]` (defaults: 16, `BENCH_engine.json`), or
//! `… -- --smoke [guard.json [telemetry.json]]` for the tier-1 smoke
//! mode: one small size, plans on vs off vs the reference engine,
//! bit-for-bit equality of states, trace and message log asserted on the
//! serial and sharded paths (so plan/metric divergence fails fast instead
//! of waiting for a full bench run); with a guard path, it also times the
//! fft serial row into a one-row guard file for `bench_compare.sh` (the
//! tier-1 throughput tripwire); with a telemetry path, it writes one
//! armed `nob-telemetry-v1` run snapshot covering every instrumented
//! phase for `bench_smoke.sh` to jq-validate.
//!
//! The executor width is pinned per row via `RunOptions::workers`, so one
//! process covers the whole scaling column. On containers that expose a
//! single CPU the `threads > 1` rows measure pure coordination overhead —
//! they are skipped by default (set `NOB_BENCH_ALL_WIDTHS=1` to force
//! them; `bench_compare.sh` tolerates rows absent from either file).

use nob_algos::fft::BinaryExchangeFft;
use nob_algos::sort::ColumnSort;
use nob_bench::{random_keys, test_signal};
use nob_core::telemetry::{RunReport, Site, TelemetrySink};
use nob_machine::reference::run_reference;
use nob_machine::{run, NobAlgorithm, Program, RunOptions};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Peak resident set size so far, in kB (`VmHWM`: a process-lifetime
/// high-water mark). Readings are cumulative maxima, so each row reports
/// the *delta* across its own work (`rss_delta_kb`) next to the raw
/// watermark — a row that fits inside an earlier row's footprint reads 0,
/// and a row that pushes a new peak owns exactly its increment, making
/// memory regressions at small `v` visible instead of being masked by the
/// largest prior run.
fn peak_rss_kb() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|l| l.trim().trim_end_matches("kB").trim().parse().ok())
        .unwrap_or(0)
}

/// Truthy environment flag: set to anything except empty or `"0"`.
/// (`NOB_BENCH_ALL_WIDTHS` used to be presence-tested, so exporting
/// `NOB_BENCH_ALL_WIDTHS=0` *forced* the rows it reads as disabling.)
fn env_flag(name: &str) -> bool {
    std::env::var(name).map(|v| !v.is_empty() && v != "0").unwrap_or(false)
}

/// Logical CPUs visible to this process (cgroup-quota aware) — an upper
/// bound on usable hardware parallelism, not a physical-core count.
fn available_cpus() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

#[derive(Clone)]
struct Measurement {
    secs: f64,
    messages: u64,
    supersteps: usize,
}

impl Measurement {
    fn msgs_per_sec(&self) -> f64 {
        self.messages as f64 / self.secs
    }
}

/// Times `engine` over enough repetitions to exceed ~500ms, returning the
/// best (fastest) repetition — the standard noise-resistant estimator
/// (the floor buys enough repetitions to catch an interference-free
/// window on shared CI containers).
fn measure<S: Clone + Send, M: Send>(
    prog: &Program<S, M>,
    states: &[S],
    engine: impl Fn(&Program<S, M>, Vec<S>) -> nob_machine::RunResult<S>,
) -> Measurement {
    let mut best = f64::INFINITY;
    let mut messages = 0;
    let mut supersteps = 0;
    let mut spent = 0.0f64;
    let mut reps = 0u32;
    while reps < 3 || (spent < 0.5 && reps < 120) {
        let input = states.to_vec();
        let start = Instant::now();
        let res = engine(prog, input);
        let secs = start.elapsed().as_secs_f64();
        spent += secs;
        best = best.min(secs);
        messages = res.trace.total_messages();
        supersteps = res.trace.superstep_count();
        reps += 1;
    }
    Measurement { secs: best, messages, supersteps }
}

struct Row {
    v: usize,
    program: &'static str,
    /// Executor workers pinned for this row (`RunOptions::workers`).
    threads: usize,
    /// Supersteps carrying a *declared* compiled communication plan.
    planned_steps: usize,
    /// Supersteps planned after `Program::capture_plans` (always the full
    /// step count — the 100%-coverage invariant is asserted per row).
    captured_steps: usize,
    /// Declared plans enabled, fusion off (the PR-5 one-barrier anchor).
    /// `None` when the program declares no plans (`planned_steps == 0`):
    /// a plans-on run of such a program is the dynamic path wearing a
    /// different flag, so timing it would duplicate `arena` and a reader
    /// diffing plan columns across files would be comparing noise —
    /// the JSON emits `null` instead.
    plan: Option<Measurement>,
    /// Declared plans enabled, fusion on (zero-barrier shard-local runs).
    /// `None` exactly when `plan` is (nothing declared to fuse).
    fused: Option<Measurement>,
    /// Capture-augmented program (100% planned), fusion on.
    captured: Measurement,
    /// Engine with plans disabled (dynamic path; comparable to pre-plan
    /// baselines' `arena_msgs_per_sec`).
    arena: Measurement,
    reference: Measurement,
    peak_rss_kb: u64,
    /// VmHWM growth across this row's measurements alone (0 when the row
    /// fit inside an earlier row's footprint).
    rss_delta_kb: u64,
    /// Phase-time snapshot from one telemetry-armed captured-fused run
    /// plus one armed dynamic run at this row's width (untimed — the rate
    /// columns above stay disarmed, exactly the baseline configuration).
    phases: RunReport,
}

fn worker_opts(w: usize, use_plans: bool, fuse: bool) -> RunOptions {
    RunOptions { workers: Some(w), use_plans, fuse, ..Default::default() }
}

/// Asserts bit-for-bit equality of two runs (states, trace, message log).
fn assert_same<S: PartialEq + std::fmt::Debug>(
    what: &str,
    name: &str,
    v: usize,
    a: &nob_machine::RunResult<S>,
    b: &nob_machine::RunResult<S>,
) {
    assert_eq!(a.states, b.states, "{name}: {what} states diverge at v = {v}");
    assert_eq!(a.trace, b.trace, "{name}: {what} trace diverges at v = {v}");
    assert_eq!(a.message_log, b.message_log, "{name}: {what} message log diverges at v = {v}");
}

/// Cross-checks one program across every engine configuration the bench
/// later times: plans on/off, serial/sharded, and the reference engine.
/// Returns `(prog, states)` ready for timing.
#[allow(clippy::type_complexity)]
fn crosscheck<A>(
    alg: &A,
    name: &'static str,
    n: usize,
    input: &A::Input,
    widest: usize,
    declared_plans: bool,
) -> (Program<A::State, A::Msg>, Vec<A::State>)
where
    A: NobAlgorithm,
    A::State: Clone + PartialEq + std::fmt::Debug,
{
    let prog = alg.build(n);
    if declared_plans {
        assert!(prog.planned_steps() > 0, "{name}: no compiled communication plans at v = {n}");
    }
    let states = alg.init(n, input);
    // Message-log equality is only checked at small sizes: a log is O(total
    // messages) (55M entries for sort at v = 2^16), and holding three logged
    // results at once would dominate peak RSS — corrupting the bench's
    // peak_rss_kb column and risking OOM on small containers. Larger sizes
    // compare states + trace; log equivalence is proven by the differential
    // suites and the smoke mode at v = 2^10.
    let logs = n <= (1 << 12);
    let plan_on = run(&prog, states.clone(), &worker_logged(1, true, logs)).unwrap();
    let plan_off = run(&prog, states.clone(), &worker_logged(1, false, logs)).unwrap();
    assert_same("plan-on vs plan-off", name, n, &plan_on, &plan_off);
    drop(plan_off);
    let fuse_off = run(
        &prog,
        states.clone(),
        &RunOptions { fuse: false, ..worker_logged(1, true, logs) },
    )
    .unwrap();
    assert_same("fuse-on vs fuse-off", name, n, &plan_on, &fuse_off);
    drop(fuse_off);
    let reference_opts =
        RunOptions { collect_messages: logs, ..Default::default() };
    let r = run_reference(&prog, states.clone(), &reference_opts).unwrap();
    assert_same("planned vs reference", name, n, &plan_on, &r);
    drop(r);
    if widest > 1 {
        let sh = run(&prog, states.clone(), &worker_logged(widest, true, logs)).unwrap();
        assert_same("sharded planned vs serial", name, n, &sh, &plan_on);
        drop(sh);
        let sh_fuse_off = run(
            &prog,
            states.clone(),
            &RunOptions { fuse: false, ..worker_logged(widest, true, logs) },
        )
        .unwrap();
        assert_same("sharded fuse-off vs serial", name, n, &sh_fuse_off, &plan_on);
        drop(sh_fuse_off);
        let sh_off = run(&prog, states.clone(), &worker_logged(widest, false, logs)).unwrap();
        assert_same("sharded plans-off vs serial", name, n, &sh_off, &plan_on);
    }
    (prog, states)
}

/// Builds the capture-augmented twin of `alg`'s program — dynamic steps
/// record-and-replayed into plans — asserts the 100%-coverage invariant,
/// and cross-checks the captured replay bit-for-bit against the dynamic
/// run (serial, and sharded at `widest`).
fn captured_twin<A>(
    alg: &A,
    name: &'static str,
    n: usize,
    states: &[A::State],
    dynamic: &Program<A::State, A::Msg>,
    widest: usize,
) -> Program<A::State, A::Msg>
where
    A: NobAlgorithm,
    A::State: Clone + PartialEq + std::fmt::Debug,
{
    let mut cap = alg.build(n);
    cap.capture_plans(states.to_vec()).unwrap_or_else(|e| panic!("{name}: capture failed: {e}"));
    assert_eq!(
        cap.planned_steps(),
        cap.steps().len(),
        "{name}: capture left a dynamic step unplanned at v = {n}"
    );
    let logs = n <= (1 << 12);
    let want = run(dynamic, states.to_vec(), &worker_logged(1, false, logs)).unwrap();
    let got = run(&cap, states.to_vec(), &worker_logged(1, true, logs)).unwrap();
    assert_same("captured vs dynamic", name, n, &got, &want);
    drop(got);
    if widest > 1 {
        let sh = run(&cap, states.to_vec(), &worker_logged(widest, true, logs)).unwrap();
        assert_same("sharded captured vs dynamic", name, n, &sh, &want);
    }
    cap
}

fn worker_logged(w: usize, use_plans: bool, collect_messages: bool) -> RunOptions {
    RunOptions { workers: Some(w), use_plans, collect_messages, ..Default::default() }
}

fn bench_program<A>(
    alg: &A,
    name: &'static str,
    n: usize,
    input: &A::Input,
    widths: &[usize],
    declared_plans: bool,
    rows: &mut Vec<Row>,
) where
    A: NobAlgorithm,
    A::State: Clone + PartialEq + std::fmt::Debug,
{
    let widest = widths.iter().copied().max().unwrap_or(1);
    // The watermark opens *before* the crosscheck: those differential runs
    // build the same programs/arenas the timed runs use (plus the logged
    // comparisons at small v), so they are where this row's footprint — and
    // any memory regression — first materializes. Sampling after them would
    // report a delta of 0 for every row.
    let mut rss_mark = peak_rss_kb();
    let (prog, states) = crosscheck(alg, name, n, input, widest, declared_plans);
    let cap = captured_twin(alg, name, n, &states, &prog, widest);
    let base = RunOptions::default();
    let reference = measure(&prog, &states, |p, s| run_reference(p, s, &base).unwrap());
    for &w in widths {
        let anchor = worker_opts(w, true, false);
        let fuse_on = worker_opts(w, true, true);
        let off = worker_opts(w, false, false);
        // Programs with no declared plans (bfly-dyn) skip the plan/fused
        // timings: plans-on over zero planned steps is the dynamic path,
        // so the columns would be duplicates of `arena` — emit null.
        let (plan, fused) = if prog.planned_steps() > 0 {
            (
                Some(measure(&prog, &states, |p, s| run(p, s, &anchor).unwrap())),
                Some(measure(&prog, &states, |p, s| run(p, s, &fuse_on).unwrap())),
            )
        } else {
            (None, None)
        };
        let captured = measure(&cap, &states, |p, s| run(p, s, &fuse_on).unwrap());
        let arena = measure(&prog, &states, |p, s| run(p, s, &off).unwrap());
        // Phase-time column: one armed captured-fused run and one armed
        // dynamic run share a sink, so the row's phase map covers the
        // planned tiers (prepare/exec_planned/fused/commit) *and* the
        // dynamic ones (exec/flush/gather/merge) plus barrier waits. The
        // timed rate columns above never see the sink — they stay the
        // disarmed baseline configuration.
        let sink = Arc::new(TelemetrySink::for_workers(w));
        let armed = RunOptions { telemetry: Some(Arc::clone(&sink)), ..fuse_on.clone() };
        run(&cap, states.clone(), &armed).unwrap();
        let armed_dyn = RunOptions { telemetry: Some(Arc::clone(&sink)), ..off.clone() };
        run(&prog, states.clone(), &armed_dyn).unwrap();
        let phases = sink.run_report();
        let rss_after = peak_rss_kb();
        let row = Row {
            v: n,
            program: name,
            threads: w,
            planned_steps: prog.planned_steps(),
            captured_steps: cap.planned_steps(),
            plan,
            fused,
            captured,
            arena,
            reference: reference.clone(),
            peak_rss_kb: rss_after,
            rss_delta_kb: rss_after.saturating_sub(rss_mark),
            phases,
        };
        rss_mark = rss_after;
        let col = |m: &Option<Measurement>| match m {
            Some(m) => format!("{:>10.0}", m.msgs_per_sec()),
            None => format!("{:>10}", "-"),
        };
        let fuse_ratio = match (&row.fused, &row.plan) {
            (Some(f), Some(p)) => format!("{:.2}x", f.msgs_per_sec() / p.msgs_per_sec()),
            _ => "-".to_string(),
        };
        eprintln!(
            "v={:<6} {:<9} w={} plan {} | fused {} | captured {:>10.0} | dynamic {:>10.0} | reference {:>10.0} msg/s | fused/plan {} | captured/dyn {:.2}x",
            row.v,
            row.program,
            row.threads,
            col(&row.plan),
            col(&row.fused),
            row.captured.msgs_per_sec(),
            row.arena.msgs_per_sec(),
            row.reference.msgs_per_sec(),
            fuse_ratio,
            row.captured.msgs_per_sec() / row.arena.msgs_per_sec(),
        );
        rows.push(row);
    }
}

/// Renders a row's phase-time snapshot as a flat `{"site": nanos, ...}`
/// JSON object, every [`Site`] present (zeros included) so consumers can
/// rely on the key set — the per-row column `scripts/bench_compare.sh`
/// diffs informationally.
fn phase_map(report: &RunReport) -> String {
    let mut out = String::with_capacity(report.sites.len() * 32);
    out.push('{');
    for (i, s) in report.sites.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write!(out, "\"{}\": {}", s.site, s.nanos).unwrap();
    }
    out.push('}');
    out
}

/// Serializes bench rows into the `BENCH_engine.json` schema (shared by
/// the full bench and the smoke mode's one-row guard file, so
/// `scripts/bench_compare.sh` can diff either against a baseline).
fn emit_json(rows: &[Row], cpus: usize) -> String {
    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"bench\": \"engine_throughput\",").unwrap();
    writeln!(json, "  \"pool_threads\": {},", rayon::current_num_threads()).unwrap();
    writeln!(json, "  \"available_cpus\": {cpus},").unwrap();
    writeln!(json, "  \"validate\": {},", RunOptions::default().validate).unwrap();
    writeln!(json, "  \"note\": \"threads = executor workers pinned via RunOptions::workers (1 = serial path; threads > 1 rows are omitted on single-CPU containers unless NOB_BENCH_ALL_WIDTHS is truthy — 0/empty disable). plan_msgs_per_sec = declared communication plans enabled with fusion off (the one-barrier protocol, comparable to pre-fusion baselines); fused_msgs_per_sec = declared plans with superstep fusion on (zero-barrier shard-local pipelines + O(1) layout arena sizing); captured_msgs_per_sec = the capture-augmented program (capture_plans, 100% planned) with fusion on — the capture win for programs with dynamic steps, captured-replay parity for fully declared ones; arena_msgs_per_sec = plans disabled, comparable to pre-plan baselines. plan_* and fused_* are null on rows whose program declares no plans (planned_steps = 0): plans-on there is the dynamic path, so the columns would duplicate arena_*. peak_rss_kb is the process VmHWM high-water mark (cumulative across rows); rss_delta_kb is this row's own VmHWM growth, the per-row memory signal. phase_nanos = per-phase wall-clock (nob-telemetry-v1 site names) from one telemetry-armed captured-fused run plus one armed dynamic run at this row's width — untimed, so the rate columns stay measured with telemetry disarmed\",").unwrap();
    writeln!(json, "  \"rows\": [").unwrap();
    // Nullable column formatters: rows whose program declares no plans
    // (bfly-dyn) carry `null` in the plan/fused columns rather than a
    // duplicate of the dynamic numbers (`bench_compare.sh` skips nulls).
    let secs = |m: &Option<Measurement>| match m {
        Some(m) => format!("{:.6}", m.secs),
        None => "null".to_string(),
    };
    let rate = |m: &Option<Measurement>| match m {
        Some(m) => format!("{:.0}", m.msgs_per_sec()),
        None => "null".to_string(),
    };
    for (i, row) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let plan_speedup = match &row.plan {
            Some(p) => format!("{:.3}", p.msgs_per_sec() / row.arena.msgs_per_sec()),
            None => "null".to_string(),
        };
        let fuse_speedup = match (&row.fused, &row.plan) {
            (Some(f), Some(p)) => format!("{:.3}", f.msgs_per_sec() / p.msgs_per_sec()),
            _ => "null".to_string(),
        };
        writeln!(
            json,
            "    {{\"v\": {}, \"program\": \"{}\", \"threads\": {}, \"supersteps\": {}, \"planned_steps\": {}, \"captured_steps\": {}, \"messages_per_run\": {}, \
             \"plan_secs\": {}, \"plan_msgs_per_sec\": {}, \
             \"fused_secs\": {}, \"fused_msgs_per_sec\": {}, \
             \"captured_secs\": {:.6}, \"captured_msgs_per_sec\": {:.0}, \
             \"arena_secs\": {:.6}, \"arena_msgs_per_sec\": {:.0}, \
             \"reference_secs\": {:.6}, \"reference_msgs_per_sec\": {:.0}, \
             \"plan_speedup\": {}, \"fuse_speedup\": {}, \"capture_speedup\": {:.3}, \"speedup\": {:.3}, \"peak_rss_kb\": {}, \"rss_delta_kb\": {}, \"phase_nanos\": {}}}{}",
            row.v,
            row.program,
            row.threads,
            row.arena.supersteps,
            row.planned_steps,
            row.captured_steps,
            row.arena.messages,
            secs(&row.plan),
            rate(&row.plan),
            secs(&row.fused),
            rate(&row.fused),
            row.captured.secs,
            row.captured.msgs_per_sec(),
            row.arena.secs,
            row.arena.msgs_per_sec(),
            row.reference.secs,
            row.reference.msgs_per_sec(),
            plan_speedup,
            fuse_speedup,
            row.captured.msgs_per_sec() / row.arena.msgs_per_sec(),
            row.arena.msgs_per_sec() / row.reference.msgs_per_sec(),
            row.peak_rss_kb,
            row.rss_delta_kb,
            phase_map(&row.phases),
            comma,
        )
        .unwrap();
    }
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();
    json
}

/// A fully *dynamic* butterfly: the same exchange shape as the FFT's
/// binary-exchange network, but declared with `Program::step` — zero
/// oblivious routes, so only trace capture can bring it onto the planned
/// path. Its `captured_msgs_per_sec` column is the record-and-replay win;
/// its `plan`/`fused` columns are `null` (nothing declared to time).
#[derive(Debug, Clone, Default)]
struct DynButterfly;

impl NobAlgorithm for DynButterfly {
    type State = u64;
    type Msg = u64;
    type Input = [u64];
    type Output = Vec<u64>;

    fn name(&self) -> String {
        "bfly-dyn".to_string()
    }

    fn v(&self, n: usize) -> usize {
        n
    }

    fn init(&self, n: usize, input: &[u64]) -> Vec<u64> {
        assert_eq!(input.len(), n);
        input.to_vec()
    }

    fn build(&self, n: usize) -> Program<u64, u64> {
        let mut prog: Program<u64, u64> = Program::new(n, n);
        let log_v = prog.log_v();
        for l in 0..log_v {
            let d = n >> (l + 1);
            prog.step(l, "bfly-dyn", move |st, ctx, inbox, out| {
                for m in inbox.drain(..) {
                    *st = st.wrapping_mul(31).wrapping_add(m);
                }
                out.send(ctx.vp ^ d, *st);
            });
        }
        prog.step(log_v - 1, "bfly-consume", |st, _ctx, inbox, _out| {
            for m in inbox.drain(..) {
                *st = st.wrapping_mul(31).wrapping_add(m);
            }
        });
        prog
    }

    fn extract(&self, _n: usize, states: Vec<u64>) -> Vec<u64> {
        states
    }
}

/// Tier-1 smoke mode: tiny size, serial + sharded at 4 workers (the gang
/// runs even on 1-CPU containers — correctness is scheduling-independent),
/// plans on vs off, fusion on vs off, capture on vs off, vs the reference
/// engine — trace/state/log equality asserted, no timing.
///
/// With an output path (`--smoke <out.json>`) it additionally times the
/// fft `v = 2^10` serial row — fault injection and telemetry both
/// disarmed, exactly the baseline's configuration — and writes a one-row
/// guard file for `scripts/bench_compare.sh` to diff against
/// `BENCH_engine.json`: the regression tripwire proving the
/// failpoint/watchdog *and* telemetry plumbing cost nothing when
/// disarmed. A second path adds the armed telemetry snapshot (see below).
fn smoke(guard_out: Option<&str>, telemetry_out: Option<&str>) {
    let v = 1usize << 10;
    let signal = test_signal(v);
    crosscheck(&BinaryExchangeFft, "fft", v, &signal[..], 4, true);
    let keys = random_keys(v, 42);
    crosscheck(&ColumnSort::<u64>::default(), "sort", v, &keys[..], 4, true);
    // Folded executions agree too (plan metrics at granularity p), serial
    // and through the sharded executor, fused and unfused.
    let prog = ColumnSort::<u64>::default().build(v);
    let states = ColumnSort::<u64>::default().init(v, &keys[..]);
    for p in [4usize, 32] {
        let on = nob_machine::run_folded(&prog, states.clone(), p, &worker_logged(1, true, true))
            .unwrap();
        let off =
            nob_machine::run_folded(&prog, states.clone(), p, &worker_logged(1, false, true))
                .unwrap();
        assert_same("folded plan-on vs plan-off", "sort", p, &on, &off);
        let fuse_off = nob_machine::run_folded(
            &prog,
            states.clone(),
            p,
            &RunOptions { fuse: false, ..worker_logged(1, true, true) },
        )
        .unwrap();
        assert_same("folded fuse-on vs fuse-off", "sort", p, &fuse_off, &on);
        drop(fuse_off);
        let sh_on =
            nob_machine::run_folded(&prog, states.clone(), p, &worker_logged(4, true, true))
                .unwrap();
        assert_same("sharded folded plan-on vs serial", "sort", p, &sh_on, &on);
        drop(sh_on);
        let sh_fuse_off = nob_machine::run_folded(
            &prog,
            states.clone(),
            p,
            &RunOptions { fuse: false, ..worker_logged(4, true, true) },
        )
        .unwrap();
        assert_same("sharded folded fuse-off vs serial", "sort", p, &sh_fuse_off, &on);
        drop(sh_fuse_off);
        let sh_off =
            nob_machine::run_folded(&prog, states.clone(), p, &worker_logged(4, false, true))
                .unwrap();
        assert_same("sharded folded plan-off vs serial", "sort", p, &sh_off, &on);
    }
    // Capture-on/off equality rows: the dynamic butterfly captured and
    // replayed must match its live dynamic run bit for bit — serial,
    // sharded (fused and unfused), and folded.
    let bfly = DynButterfly;
    let bkeys = random_keys(v, 7);
    let (bprog, bstates) = crosscheck(&bfly, "bfly-dyn", v, &bkeys[..], 4, false);
    let cap = captured_twin(&bfly, "bfly-dyn", v, &bstates, &bprog, 4);
    let want = run(&bprog, bstates.clone(), &worker_logged(1, false, true)).unwrap();
    let cap_fuse_off = run(
        &cap,
        bstates.clone(),
        &RunOptions { fuse: false, ..worker_logged(4, true, true) },
    )
    .unwrap();
    assert_same("sharded captured fuse-off vs dynamic", "bfly-dyn", v, &cap_fuse_off, &want);
    drop(cap_fuse_off);
    for p in [4usize, 32] {
        let dyn_fold =
            nob_machine::run_folded(&bprog, bstates.clone(), p, &worker_logged(1, false, true))
                .unwrap();
        for w in [1usize, 4] {
            let cap_fold =
                nob_machine::run_folded(&cap, bstates.clone(), p, &worker_logged(w, true, true))
                    .unwrap();
            assert_same("folded captured vs dynamic", "bfly-dyn", p, &cap_fold, &dyn_fold);
        }
    }
    println!(
        "bench_smoke: OK (plans on/off, fusion on/off, capture on/off bit-for-bit at v = {v}, serial + sharded at 4 workers + folded)"
    );
    if let Some(out) = guard_out {
        let mut rows = Vec::new();
        bench_program(&BinaryExchangeFft, "fft", v, &signal[..], &[1], true, &mut rows);
        let json = emit_json(&rows, available_cpus());
        std::fs::write(out, &json).expect("write smoke guard json");
        eprintln!("wrote {out}");
    }
    // One armed telemetry snapshot covering *every* instrumented site: a
    // planned fft run sharded (prepare / exec_planned / fused_exec /
    // commit / barrier_wait) and serial (serial:planned), a dynamic
    // butterfly run sharded (exec / flush / gather / merge / barrier_wait)
    // and serial (serial:exec), and a plan capture (serial:capture) — all
    // recording into one pre-sized sink. `bench_smoke.sh` jq-validates the
    // written `nob-telemetry-v1` snapshot; the in-process assertion below
    // makes a hole in coverage fail with the site's name.
    if let Some(out) = telemetry_out {
        let sink = Arc::new(TelemetrySink::for_workers(4));
        let armed = |w: usize, use_plans: bool| RunOptions {
            workers: Some(w),
            use_plans,
            telemetry: Some(Arc::clone(&sink)),
            ..Default::default()
        };
        let fprog = BinaryExchangeFft.build(v);
        let fstates = BinaryExchangeFft.init(v, &signal[..]);
        run(&fprog, fstates.clone(), &armed(4, true)).expect("armed sharded planned run");
        run(&fprog, fstates, &armed(1, true)).expect("armed serial planned run");
        let dprog = DynButterfly.build(v);
        run(&dprog, bstates.clone(), &armed(4, false)).expect("armed sharded dynamic run");
        run(&dprog, bstates.clone(), &armed(1, false)).expect("armed serial dynamic run");
        let mut cprog = DynButterfly.build(v);
        cprog
            .capture_plans_with(bstates.clone(), None, Some(&sink))
            .expect("armed plan capture");
        let report = sink.run_report();
        for s in Site::ALL {
            assert!(
                report.count(s) > 0,
                "smoke telemetry snapshot left site {} unobserved",
                s.name()
            );
        }
        std::fs::write(out, report.to_json() + "\n").expect("write telemetry snapshot");
        eprintln!("wrote {out}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("--smoke") {
        smoke(args.get(2).map(String::as_str), args.get(3).map(String::as_str));
        return;
    }
    let max_log_v: u32 = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(16);
    let out_path = args.get(2).cloned().unwrap_or_else(|| "BENCH_engine.json".to_string());
    let cpus = available_cpus();
    // Thread-scaling column: 1, 2, 4, … up to the next power of two
    // covering the visible CPUs. A single-CPU container gets only the
    // serial row by default — multi-worker rows there measure pure
    // coordination overhead, which burns minutes without measuring scaling
    // (set NOB_BENCH_ALL_WIDTHS=1 to record them anyway; =0 or empty
    // disables like unset, the flag's *value* is parsed, not its
    // presence).
    let all_widths = env_flag("NOB_BENCH_ALL_WIDTHS");
    let mut widths = vec![1usize];
    if cpus > 1 || all_widths {
        while *widths.last().unwrap() < 4.max(cpus) {
            widths.push(widths.last().unwrap() * 2);
        }
    }

    let mut rows = Vec::new();
    for log_v in 10..=max_log_v {
        let v = 1usize << log_v;
        let signal = test_signal(v);
        bench_program(&BinaryExchangeFft, "fft", v, &signal[..], &widths, true, &mut rows);
        let keys = random_keys(v, 42);
        bench_program(&ColumnSort::<u64>::default(), "sort", v, &keys[..], &widths, true, &mut rows);
        let bkeys = random_keys(v, 7);
        bench_program(&DynButterfly, "bfly-dyn", v, &bkeys[..], &widths, false, &mut rows);
    }

    let json = emit_json(&rows, cpus);
    std::fs::write(&out_path, &json).expect("write BENCH_engine.json");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
