//! E1 (Thm 4.2) — communication complexity of the recursive n-MM algorithm.
//!
//! Regenerates, for each n and p: the measured `H(n, p, σ)`, the Theorem-4.2
//! closed form `n/p^{2/3} + σ·log p`, their ratio (bounded ⇒ the bound's
//! shape holds), the Lemma-4.1 lower bound and the optimality factor, plus
//! Cannon's algorithm as the flat class-C competitor.

use nob_algos::mm::cannon::CannonMm;
use nob_algos::mm::standard::RecursiveMm;
use nob_algos::semiring::WrapU64;
use nob_bench::{fmt, random_mm, Table};
use nob_core::lower_bounds;
use nob_machine::{execute, RunOptions};

fn main() {
    for &n in &[64usize, 4096] {
        let input = random_mm(n, 42);
        let rec = RecursiveMm::<WrapU64>::default();
        let rec_plain = RecursiveMm::<WrapU64>::new(false);
        let can = CannonMm::<WrapU64>::default();
        let (_, t_rec) = execute(&rec, n, &input, &RunOptions::default()).unwrap();
        let (_, t_plain) = execute(&rec_plain, n, &input, &RunOptions::default()).unwrap();
        let (_, t_can) = execute(&can, n, &input, &RunOptions::default()).unwrap();

        for &sigma in &[0.0f64, 16.0] {
            let mut tab = Table::new(&[
                "p",
                "H_rec",
                "H_rec(no dummies)",
                "Thm4.2",
                "H/Thm",
                "LB(4.1)",
                "H/LB",
                "H_cannon",
                "cannon/rec'",
            ]);
            let mut p = 2usize;
            while p <= n {
                let h = t_rec.comm_complexity(p, sigma);
                let hp = t_plain.comm_complexity(p, sigma);
                let th = lower_bounds::upper::mm(n, p, sigma);
                let lb = lower_bounds::mm(n, p, sigma);
                let hc = t_can.comm_complexity(p, sigma);
                tab.row(vec![
                    p.to_string(),
                    fmt(h),
                    fmt(hp),
                    fmt(th),
                    fmt(h / th),
                    fmt(lb),
                    fmt(h / lb),
                    fmt(hc),
                    fmt(hc / hp),
                ]);
                p *= 8;
            }
            tab.print(&format!("E1: n-MM, n = {n}, sigma = {sigma}"));
        }

        let w = nob_core::wiseness::alpha_max(&t_rec, n);
        println!(
            "\nwiseness alpha({}) = {:.3} (binding fold {:?}); total messages = {}",
            n,
            w.alpha,
            w.binding_fold,
            t_rec.total_messages()
        );
    }
}
