//! E11 (Thm 3.4) — the optimality theorem's inequality chain, end to end.
//!
//! For each pair (network-oblivious algorithm A, class-C competitor C):
//! measure the premise constant β (evaluation-model optimality of A against
//! C at the σ values the proof instantiates), measure A's wiseness α, and
//! verify `D_A ≤ (1+α)/(αβ)·D_C` on every admissible machine of the
//! standard suite — the exact statement of the theorem.

use nob_algos::fft::{BinaryExchangeFft, RecursiveFft};
use nob_algos::mm::cannon::CannonMm;
use nob_algos::mm::standard::RecursiveMm;
use nob_algos::semiring::WrapU64;
use nob_algos::sort::{BitonicSort, ColumnSort};
use nob_bench::{fmt, random_keys, random_mm, test_signal, Table};
use nob_core::machines;
use nob_core::theorem::{check_thm_3_4, SigmaRanges};
use nob_core::CommTrace;
use nob_machine::{execute, RunOptions};

fn report(name: &str, a: &CommTrace, c: &CommTrace, p_bar: usize) {
    let machines: Vec<_> = [16usize, 64]
        .iter()
        .flat_map(|&p| machines::standard_suite(p))
        .filter(|m| m.p <= p_bar)
        .collect();
    let ranges = SigmaRanges::unrestricted(p_bar);
    let rep = check_thm_3_4(a, c, p_bar, &ranges, &machines);
    let mut tab = Table::new(&["machine", "p", "admissible", "D_A", "D_C", "(1+a)/(ab)*D_C", "holds"]);
    for m in &rep.machines {
        tab.row(vec![
            m.machine.clone(),
            m.p.to_string(),
            m.admissible.to_string(),
            fmt(m.d_a),
            fmt(m.d_c),
            fmt(m.bound),
            m.holds.to_string(),
        ]);
    }
    tab.print(&format!(
        "E11: Thm 3.4 for {name}: alpha = {}, beta = {}, factor = {} -> all_hold = {}",
        fmt(rep.alpha),
        fmt(rep.beta),
        fmt(rep.factor),
        rep.all_hold()
    ));
    assert!(rep.all_hold(), "optimality theorem violated — metric pipeline bug");
}

fn main() {
    let n = 4096usize;
    let input = random_mm(n, 5);
    let (_, a) =
        execute(&RecursiveMm::<WrapU64>::default(), n, &input, &RunOptions::default()).unwrap();
    let (_, c) =
        execute(&CannonMm::<WrapU64>::default(), n, &input, &RunOptions::default()).unwrap();
    report("n-MM (recursive vs Cannon)", &a, &c, n);

    let n = 1024usize;
    let xs = test_signal(n);
    let (_, a) = execute(&RecursiveFft::default(), n, &xs[..], &RunOptions::default()).unwrap();
    let (_, c) = execute(&BinaryExchangeFft, n, &xs[..], &RunOptions::default()).unwrap();
    report("n-FFT (recursive vs binary-exchange)", &a, &c, n);

    let n = 1024usize;
    let keys = random_keys(n, 11);
    let (_, a) =
        execute(&ColumnSort::<u64>::default(), n, &keys[..], &RunOptions::default()).unwrap();
    let (_, c) =
        execute(&BitonicSort::<u64>::default(), n, &keys[..], &RunOptions::default()).unwrap();
    report("n-sort (Columnsort vs bitonic)", &a, &c, n);
}
