//! E10 (Figure 1) — the diamond-DAG decomposition.
//!
//! Renders the k×k grid of sub-diamonds of a diamond of side n with each
//! sub-diamond labelled by its evaluation phase (the 2k−1 "horizontal
//! stripes" of Figure 1 are the anti-diagonals of this grid).

fn main() {
    let k = 8usize; // one recursion level with k = 2^⌈√log n⌉ for n = 256
    println!("Figure 1: decomposition of a diamond of side n into 2k-1 = {} stripes", 2 * k - 1);
    println!("of up to k = {k} diamonds of side n/k; cell (a,b) shows its phase a+b.\n");
    println!("(Rotated coordinates: u = x+t rightward, w = t-x upward; dependencies");
    println!("flow toward increasing u and w, so equal-phase cells are independent.)\n");
    for b in (0..k).rev() {
        // Indent to draw the rotated grid as the paper's diamond.
        print!("{}", " ".repeat(2 * b));
        for a in 0..k {
            print!("{:>3} ", a + b);
        }
        println!();
    }
    println!("\nStripe populations (phase -> #diamonds):");
    for q in 0..2 * k - 1 {
        let count = (0..k).filter(|&a| q >= a && q - a < k).count();
        println!("  phase {q:>2}: {count} diamonds evaluated in parallel on M(n/k) submachines");
    }
}
