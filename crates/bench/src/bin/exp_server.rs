//! Job-server experiment: jobs/second and latency percentiles of the
//! multi-tenant [`JobServer`] — the persistent gang + compiled-plan cache
//! + pooled arenas serving path — against the per-job cold cost it amortizes.
//!
//! Workloads (each one row in `BENCH_server.json`):
//!
//! * `fft_cold` — FFT `v = 2^10` jobs submitted under a *fresh* shape key
//!   each time: every job misses the plan cache, so it pays program
//!   construction and `StepPlan` compilation (the full route scan +
//!   cluster-legality proof per superstep) before executing. This is the
//!   pre-server per-request cost, measured on the serving path.
//! * `fft_warm` — the same jobs under one shape key: job 1 compiles, the
//!   rest reuse the cached compiled program (the builder closure is
//!   dropped unopened) and its send totals. `warm_over_cold` is the
//!   amortization win the server exists for (acceptance: ≥ 3x).
//! * `fft_warm_gang` — a burst of warm jobs submitted upfront to a
//!   4-worker gang and drained: pipelined serving throughput where
//!   per-job cost is an enqueue plus the gang's two barrier rounds.
//!   Latencies are completion-from-submit, i.e. they include queue wait.
//! * `mixed` — interactive small jobs (`v = 2^10`) racing large jobs
//!   (`v = 2^14`) on the same gang: the FIFO + size-aware admission row.
//!   `p50_us`/`p99_us` are the *small*-job latencies (the ones admission
//!   protects); `large_p99_us` reports the large tail next to them.
//! * `fft_warm_steady` — sequential warm jobs measured last, after every
//!   pool has seen its high-water job: `rss_delta_kb` across the batch
//!   must be 0 (steady-state serving allocates no new memory).
//!
//! The cold/warm pair runs on a width-1 server (the serial serving path)
//! so the compile-amortization signal is not diluted by barrier
//! coordination noise on small containers; the gang rows run at width 4
//! regardless of visible CPUs (correctness and pooling are
//! scheduling-independent; on a 1-CPU container their absolute numbers
//! measure coordination overhead, same caveat as `exp_engine_throughput`).
//!
//! Usage: `cargo run --release -p nob-bench --bin exp_server [out_path]`
//! (default `BENCH_server.json`), or `… -- --smoke` for the tier-1 mode:
//! no timing, bit-for-bit equality of served results against direct
//! [`run`] baselines — cold, warm, captured, serial-path, post-fault and
//! post-stall jobs on a persistent gang.

use nob_algos::fft::BinaryExchangeFft;
use nob_bench::{random_keys, test_signal};
use nob_core::telemetry::TelemetrySink;
use nob_machine::{
    run, JobServer, JobSpec, JobTicket, NobAlgorithm, Program, ProgramSource, RunOptions,
    ServerConfig, ShapeKey,
};
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

type FftState = <BinaryExchangeFft as NobAlgorithm>::State;
type FftMsg = <BinaryExchangeFft as NobAlgorithm>::Msg;
type FftServer = JobServer<FftState, FftMsg>;

/// Peak resident set size so far, in kB (`VmHWM` — see
/// `exp_engine_throughput` for why deltas of a high-water mark are the
/// per-row memory signal).
fn peak_rss_kb() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|l| l.trim().trim_end_matches("kB").trim().parse().ok())
        .unwrap_or(0)
}

fn available_cpus() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// The `q`-th percentile (0..=100) by nearest-rank on a sorted copy.
fn percentile(lat_us: &[f64], q: usize) -> f64 {
    if lat_us.is_empty() {
        return 0.0;
    }
    let mut sorted = lat_us.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    sorted[(sorted.len() - 1) * q / 100]
}

/// Serving options for throughput rows: no per-message validation, no
/// trace materialization — the latency-critical configuration the server
/// documents.
fn serving_spec(shape: ShapeKey) -> JobSpec {
    let mut spec = JobSpec::new(shape);
    spec.opts.validate = false;
    spec.opts.want_trace = false;
    spec
}

fn fft_source(v: usize) -> ProgramSource<FftState, FftMsg> {
    ProgramSource::Build(Box::new(move || BinaryExchangeFft.build(v)))
}

/// A server armed with a telemetry sink: every job carries its measured
/// queue wait and service time (the split the latency columns report),
/// and the sink accumulates the serving-layer counters.
fn armed_server(n_shards: usize, sink: &Arc<TelemetrySink>) -> FftServer {
    JobServer::new(ServerConfig {
        telemetry: Some(Arc::clone(sink)),
        ..ServerConfig::with_shards(n_shards)
    })
    .expect("server")
}

fn dur_us(d: Option<Duration>) -> f64 {
    d.map_or(0.0, |d| d.as_secs_f64() * 1e6)
}

struct Row {
    name: &'static str,
    v: usize,
    width: usize,
    jobs: usize,
    secs: f64,
    lat_us: Vec<f64>,
    /// Per-job queue wait (telemetry lifecycle split of `lat_us`'s
    /// population: admission-queue time before dispatch).
    qwait_us: Vec<f64>,
    /// Per-job service time (dispatch to fulfillment) — the other half of
    /// the lifecycle split.
    svc_us: Vec<f64>,
    /// Small-vs-large split of `lat_us` (mixed row); `None` elsewhere.
    large_lat_us: Option<Vec<f64>>,
    warm_over_cold: Option<f64>,
    cache_hits: u64,
    cache_misses: u64,
    peak_rss_kb: u64,
    rss_delta_kb: u64,
}

impl Row {
    fn jobs_per_sec(&self) -> f64 {
        self.jobs as f64 / self.secs
    }
}

/// Runs `jobs` sequential submit→wait round trips; per-job latency is the
/// full round trip. Inputs are pre-cloned outside the timed window.
#[allow(clippy::too_many_arguments)]
fn sequential_batch(
    name: &'static str,
    srv: &FftServer,
    v: usize,
    width: usize,
    jobs: usize,
    spec_for: impl Fn(usize) -> JobSpec,
    expect: &[FftState],
    rss_mark: &mut u64,
) -> Row {
    let states = BinaryExchangeFft.init(v, &test_signal(v));
    let inputs: Vec<Vec<FftState>> = (0..jobs).map(|_| states.clone()).collect();
    let before = srv.stats();
    let mut lat_us = Vec::with_capacity(jobs);
    let mut qwait_us = Vec::with_capacity(jobs);
    let mut svc_us = Vec::with_capacity(jobs);
    let t0 = Instant::now();
    for (i, input) in inputs.into_iter().enumerate() {
        let at = Instant::now();
        let res = srv
            .run_job(spec_for(i), input, fft_source(v))
            .unwrap_or_else(|e| panic!("{name}: job {i} failed: {e}"));
        lat_us.push(at.elapsed().as_secs_f64() * 1e6);
        qwait_us.push(dur_us(res.queue_wait));
        svc_us.push(dur_us(res.service));
        assert_eq!(res.states, expect, "{name}: job {i} diverged from the direct run");
    }
    let secs = t0.elapsed().as_secs_f64();
    let after = srv.stats();
    let rss_after = peak_rss_kb();
    let row = Row {
        name,
        v,
        width,
        jobs,
        secs,
        lat_us,
        qwait_us,
        svc_us,
        large_lat_us: None,
        warm_over_cold: None,
        cache_hits: after.cache_hits - before.cache_hits,
        cache_misses: after.cache_misses - before.cache_misses,
        peak_rss_kb: rss_after,
        rss_delta_kb: rss_after.saturating_sub(*rss_mark),
    };
    *rss_mark = rss_after;
    row
}

/// One concurrent job's recorded latencies: the full submit-to-completion
/// round trip plus the server's own queue-wait/service split.
struct Sample {
    small: bool,
    us: f64,
    qwait_us: f64,
    svc_us: f64,
}

/// A ticket with its submit timestamp and a waiter thread that records the
/// completion latency the moment the job resolves (waiting tickets in
/// submission order would hide a small job's early completion behind an
/// earlier large job's wait).
fn spawn_waiter(
    ticket: JobTicket<FftState>,
    small: bool,
    expect: Arc<Vec<FftState>>,
    sink: Arc<Mutex<Vec<Sample>>>,
) -> std::thread::JoinHandle<()> {
    let at = Instant::now();
    std::thread::spawn(move || {
        let res = ticket.wait().expect("served job failed");
        let us = at.elapsed().as_secs_f64() * 1e6;
        assert_eq!(res.states, *expect, "served job diverged from the direct run");
        sink.lock().unwrap().push(Sample {
            small,
            us,
            qwait_us: dur_us(res.queue_wait),
            svc_us: dur_us(res.service),
        });
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("--smoke") {
        smoke(args.get(2).map(String::as_str));
        return;
    }
    let out_path = args.get(1).cloned().unwrap_or_else(|| "BENCH_server.json".to_string());
    let v = 1usize << 10;
    let jobs = 32usize;
    let mut rss_mark = peak_rss_kb();
    let mut rows = Vec::new();

    // Direct-run baseline for result equality (states only: serving rows
    // skip trace materialization).
    let expect = {
        let prog = BinaryExchangeFft.build(v);
        let states = BinaryExchangeFft.init(v, &test_signal(v));
        run(&prog, states, &RunOptions { workers: Some(1), ..Default::default() })
            .expect("baseline run")
            .states
    };

    // --- cold vs warm on the serial serving path (width 1) --------------
    // Every bench server is telemetry-armed: the queue-wait/service split
    // columns come from the lifecycle events (arming is the configuration
    // being measured — the disarmed-is-free guard lives in
    // `exp_engine_throughput`'s smoke row).
    let sink1 = Arc::new(TelemetrySink::for_workers(1));
    let srv1 = armed_server(1, &sink1);
    let cold = sequential_batch(
        "fft_cold",
        &srv1,
        v,
        1,
        jobs,
        |i| serving_spec(ShapeKey { algo: "fft-cold", variant: i as u64 }),
        &expect,
        &mut rss_mark,
    );
    assert_eq!(cold.cache_misses, jobs as u64, "cold jobs must all miss the plan cache");
    eprintln!(
        "{:<16} w={} {:>8.0} jobs/s | p50 {:>7.0}us p99 {:>7.0}us",
        cold.name,
        cold.width,
        cold.jobs_per_sec(),
        percentile(&cold.lat_us, 50),
        percentile(&cold.lat_us, 99),
    );
    // One unmeasured job compiles the warm shape's cache entry.
    srv1.run_job(
        serving_spec(ShapeKey { algo: "fft-warm", variant: 0 }),
        BinaryExchangeFft.init(v, &test_signal(v)),
        fft_source(v),
    )
    .expect("warmup job");
    let mut warm = sequential_batch(
        "fft_warm",
        &srv1,
        v,
        1,
        jobs,
        |_| serving_spec(ShapeKey { algo: "fft-warm", variant: 0 }),
        &expect,
        &mut rss_mark,
    );
    assert_eq!(warm.cache_hits, jobs as u64, "warm jobs must all hit the plan cache");
    warm.warm_over_cold = Some(warm.jobs_per_sec() / cold.jobs_per_sec());
    eprintln!(
        "{:<16} w={} {:>8.0} jobs/s | p50 {:>7.0}us p99 {:>7.0}us | warm/cold {:.2}x",
        warm.name,
        warm.width,
        warm.jobs_per_sec(),
        percentile(&warm.lat_us, 50),
        percentile(&warm.lat_us, 99),
        warm.warm_over_cold.unwrap(),
    );
    rows.push(cold);
    rows.push(warm);
    drop(srv1);

    // --- gang rows (width 4) --------------------------------------------
    let sink4 = Arc::new(TelemetrySink::for_workers(4));
    let srv4 = armed_server(4, &sink4);
    let expect_arc = Arc::new(expect);
    let warm_key = ShapeKey { algo: "fft-warm", variant: 0 };
    srv4.run_job(
        serving_spec(warm_key),
        BinaryExchangeFft.init(v, &test_signal(v)),
        fft_source(v),
    )
    .expect("gang warmup job");

    // Pipelined burst: all jobs queued upfront, gang drains them.
    {
        let states = BinaryExchangeFft.init(v, &test_signal(v));
        let inputs: Vec<Vec<FftState>> = (0..jobs).map(|_| states.clone()).collect();
        let sink = Arc::new(Mutex::new(Vec::new()));
        let before = srv4.stats();
        let t0 = Instant::now();
        let waiters: Vec<_> = inputs
            .into_iter()
            .map(|input| {
                let t = srv4.submit(serving_spec(warm_key), input, fft_source(v)).expect("submit");
                spawn_waiter(t, true, Arc::clone(&expect_arc), Arc::clone(&sink))
            })
            .collect();
        for w in waiters {
            w.join().expect("waiter");
        }
        let secs = t0.elapsed().as_secs_f64();
        let after = srv4.stats();
        let rss_after = peak_rss_kb();
        let done = sink.lock().unwrap();
        let lat_us: Vec<f64> = done.iter().map(|s| s.us).collect();
        let qwait_us: Vec<f64> = done.iter().map(|s| s.qwait_us).collect();
        let svc_us: Vec<f64> = done.iter().map(|s| s.svc_us).collect();
        drop(done);
        let row = Row {
            name: "fft_warm_gang",
            v,
            width: 4,
            jobs,
            secs,
            lat_us,
            qwait_us,
            svc_us,
            large_lat_us: None,
            warm_over_cold: None,
            cache_hits: after.cache_hits - before.cache_hits,
            cache_misses: after.cache_misses - before.cache_misses,
            peak_rss_kb: rss_after,
            rss_delta_kb: rss_after.saturating_sub(rss_mark),
        };
        rss_mark = rss_after;
        eprintln!(
            "{:<16} w={} {:>8.0} jobs/s | p50 {:>7.0}us p99 {:>7.0}us (burst: latency includes queue wait)",
            row.name,
            row.width,
            row.jobs_per_sec(),
            percentile(&row.lat_us, 50),
            percentile(&row.lat_us, 99),
        );
        rows.push(row);
    }

    // Mixed small/large: 4 large jobs interleaved with 32 small ones; the
    // admission policy lets queued small jobs overtake a large head.
    {
        let v_large = 1usize << 14;
        let expect_large = {
            let prog = BinaryExchangeFft.build(v_large);
            let states = BinaryExchangeFft.init(v_large, &test_signal(v_large));
            run(&prog, states, &RunOptions { workers: Some(1), ..Default::default() })
                .expect("baseline large run")
                .states
        };
        let large_key = ShapeKey { algo: "fft-large", variant: 0 };
        srv4.run_job(
            serving_spec(large_key),
            BinaryExchangeFft.init(v_large, &test_signal(v_large)),
            fft_source(v_large),
        )
        .expect("large warmup job");
        let expect_large = Arc::new(expect_large);
        let small_states = BinaryExchangeFft.init(v, &test_signal(v));
        let large_states = BinaryExchangeFft.init(v_large, &test_signal(v_large));
        let (n_large, per_large) = (4usize, 8usize);
        let sink = Arc::new(Mutex::new(Vec::new()));
        let before = srv4.stats();
        let t0 = Instant::now();
        let mut waiters = Vec::new();
        for _ in 0..n_large {
            let t = srv4
                .submit(serving_spec(large_key), large_states.clone(), fft_source(v_large))
                .expect("submit large");
            waiters.push(spawn_waiter(t, false, Arc::clone(&expect_large), Arc::clone(&sink)));
            for _ in 0..per_large {
                let t = srv4
                    .submit(serving_spec(warm_key), small_states.clone(), fft_source(v))
                    .expect("submit small");
                waiters.push(spawn_waiter(t, true, Arc::clone(&expect_arc), Arc::clone(&sink)));
            }
        }
        for w in waiters {
            w.join().expect("waiter");
        }
        let secs = t0.elapsed().as_secs_f64();
        let after = srv4.stats();
        let rss_after = peak_rss_kb();
        let done = sink.lock().unwrap();
        let small_lat: Vec<f64> = done.iter().filter(|s| s.small).map(|s| s.us).collect();
        let small_qwait: Vec<f64> =
            done.iter().filter(|s| s.small).map(|s| s.qwait_us).collect();
        let small_svc: Vec<f64> = done.iter().filter(|s| s.small).map(|s| s.svc_us).collect();
        let large_lat: Vec<f64> = done.iter().filter(|s| !s.small).map(|s| s.us).collect();
        drop(done);
        let total = n_large * (1 + per_large);
        let row = Row {
            name: "mixed",
            v,
            width: 4,
            jobs: total,
            secs,
            lat_us: small_lat,
            qwait_us: small_qwait,
            svc_us: small_svc,
            large_lat_us: Some(large_lat),
            warm_over_cold: None,
            cache_hits: after.cache_hits - before.cache_hits,
            cache_misses: after.cache_misses - before.cache_misses,
            peak_rss_kb: rss_after,
            rss_delta_kb: rss_after.saturating_sub(rss_mark),
        };
        rss_mark = rss_after;
        eprintln!(
            "{:<16} w={} {:>8.0} jobs/s | small p50 {:>7.0}us p99 {:>7.0}us | large p99 {:>9.0}us",
            row.name,
            row.width,
            row.jobs_per_sec(),
            percentile(&row.lat_us, 50),
            percentile(&row.lat_us, 99),
            percentile(row.large_lat_us.as_deref().unwrap_or(&[]), 99),
        );
        rows.push(row);
    }

    // Warm steady state, measured last: every pool has seen its high-water
    // job, so this batch must not move the VmHWM at all.
    let steady = sequential_batch(
        "fft_warm_steady",
        &srv4,
        v,
        4,
        100,
        |_| serving_spec(warm_key),
        &expect_arc,
        &mut rss_mark,
    );
    eprintln!(
        "{:<16} w={} {:>8.0} jobs/s | p50 {:>7.0}us p99 {:>7.0}us | rss_delta {}kB",
        steady.name,
        steady.width,
        steady.jobs_per_sec(),
        percentile(&steady.lat_us, 50),
        percentile(&steady.lat_us, 99),
        steady.rss_delta_kb,
    );
    rows.push(steady);

    let json = emit_json(&rows, available_cpus());
    std::fs::write(&out_path, &json).expect("write BENCH_server.json");
    println!("{json}");
    eprintln!("wrote {out_path}");
}

fn emit_json(rows: &[Row], cpus: usize) -> String {
    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"bench\": \"job_server\",").unwrap();
    writeln!(json, "  \"available_cpus\": {cpus},").unwrap();
    writeln!(json, "  \"note\": \"Multi-tenant JobServer serving rows (validate off, traces off — the latency-critical serving configuration). fft_cold = every job under a fresh shape key (plan-cache miss: program build + StepPlan compile per job); fft_warm = one shape key (cache hit: compiled program + send totals reused, builder dropped unopened) on the width-1 serial serving path; warm_over_cold = the amortization ratio. fft_warm_gang = warm burst drained by a 4-worker persistent gang (latency includes queue wait). mixed = small v=2^10 jobs racing large v=2^14 jobs under size-aware admission: p50_us/p99_us are small-job latencies, large_p99_us the large tail. fft_warm_steady runs last; its rss_delta_kb (VmHWM growth) must be 0 — steady-state serving allocates no new memory. Gang rows are width 4 regardless of visible CPUs; on a 1-CPU container their absolute numbers measure coordination overhead. Servers run telemetry-armed: queue_p50_us/queue_p99_us (admission-queue wait before dispatch) and service_p50_us/service_p99_us (dispatch to fulfillment) split each row's latency from the per-job lifecycle events, over the same job population as p50_us/p99_us (mixed: small jobs).\",").unwrap();
    writeln!(json, "  \"workloads\": [").unwrap();
    for (i, row) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let warm = match row.warm_over_cold {
            Some(r) => format!("{r:.3}"),
            None => "null".to_string(),
        };
        let large_p99 = match &row.large_lat_us {
            Some(l) => format!("{:.0}", percentile(l, 99)),
            None => "null".to_string(),
        };
        writeln!(
            json,
            "    {{\"name\": \"{}\", \"v\": {}, \"width\": {}, \"jobs\": {}, \"secs\": {:.6}, \
             \"jobs_per_sec\": {:.1}, \"p50_us\": {:.0}, \"p99_us\": {:.0}, \
             \"queue_p50_us\": {:.0}, \"queue_p99_us\": {:.0}, \
             \"service_p50_us\": {:.0}, \"service_p99_us\": {:.0}, \
             \"large_p99_us\": {}, \"warm_over_cold\": {}, \
             \"cache_hits\": {}, \"cache_misses\": {}, \
             \"peak_rss_kb\": {}, \"rss_delta_kb\": {}}}{}",
            row.name,
            row.v,
            row.width,
            row.jobs,
            row.secs,
            row.jobs_per_sec(),
            percentile(&row.lat_us, 50),
            percentile(&row.lat_us, 99),
            percentile(&row.qwait_us, 50),
            percentile(&row.qwait_us, 99),
            percentile(&row.svc_us, 50),
            percentile(&row.svc_us, 99),
            large_p99,
            warm,
            row.cache_hits,
            row.cache_misses,
            row.peak_rss_kb,
            row.rss_delta_kb,
            comma,
        )
        .unwrap();
    }
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();
    json
}

/// Tier-1 smoke: no timing — bit-for-bit equality of served results
/// against direct [`run`] baselines on a persistent 4-worker gang, plus
/// the failure-isolation contract (a faulted job leaves the gang
/// serviceable). The server is telemetry-armed; with an output path
/// (`--smoke <snapshot.json>`) its `nob-telemetry-v1` server snapshot is
/// written for `bench_smoke.sh` to jq-validate (lifecycle counters
/// covering dispatch, epoch reset, pool reuse, the serial path, and
/// plan-cache hit/miss accounting that must equal the job count).
fn smoke(snapshot_out: Option<&str>) {
    let v = 1usize << 10;
    let prog = BinaryExchangeFft.build(v);
    let states = BinaryExchangeFft.init(v, &test_signal(v));
    let baseline =
        run(&prog, states.clone(), &RunOptions { workers: Some(1), ..Default::default() })
            .expect("baseline run");
    let sink = Arc::new(TelemetrySink::for_workers(4));
    let srv = armed_server(4, &sink);
    let key = ShapeKey { algo: "fft", variant: 0 };

    // Cold, then warm: identical results, cache accounting as declared.
    for pass in 0..3 {
        let res = srv
            .run_job(JobSpec::new(key), states.clone(), fft_source(v))
            .expect("served fft job");
        assert_eq!(res.states, baseline.states, "served fft diverged (pass {pass})");
        assert_eq!(
            res.trace.as_ref().expect("trace requested"),
            &baseline.trace,
            "served fft trace diverged (pass {pass})"
        );
    }
    let stats = srv.stats();
    assert_eq!(stats.cache_misses, 1, "first fft job must be the only cache miss");
    assert_eq!(stats.cache_hits, 2, "repeat fft jobs must hit the plan cache");

    // Serial path: a job smaller than the gang runs on the scheduler
    // thread through the same cache.
    let v_small = 2usize;
    let small_prog = BinaryExchangeFft.build(v_small);
    let small_states = BinaryExchangeFft.init(v_small, &test_signal(v_small));
    let small_baseline = run(
        &small_prog,
        small_states.clone(),
        &RunOptions { workers: Some(1), ..Default::default() },
    )
    .expect("small baseline");
    let res = srv
        .run_job(
            JobSpec::new(ShapeKey { algo: "fft", variant: 8 }),
            small_states.clone(),
            fft_source(v_small),
        )
        .expect("serial-path job");
    assert_eq!(res.states, small_baseline.states, "serial-path job diverged");
    assert_eq!(res.rounds, 0, "serial-path job must not walk the gang barrier");

    // Failure isolation: an injected fault fails exactly its job; the next
    // job on the same gang is clean and bit-for-bit right.
    let mut faulty = JobSpec::new(key);
    faulty.opts.faults = Some(Arc::new(nob_core::fault::FaultPlan::error_at(
        "shard:exec_planned",
        1,
        1,
    )));
    let err = srv
        .run_job(faulty, states.clone(), fft_source(v))
        .expect_err("injected fault must fail the job");
    let after = srv
        .run_job(JobSpec::new(key), states.clone(), fft_source(v))
        .expect("gang must stay serviceable after a failed job");
    assert_eq!(after.states, baseline.states, "post-fault job diverged (gang not reset?)");
    assert_eq!(
        after.trace.as_ref().expect("trace requested"),
        &baseline.trace,
        "post-fault trace diverged"
    );
    drop(err);

    // Captured plans: a fully dynamic butterfly served via
    // `submit_captured` replays its recorded plans; resubmitting with the
    // same states hits the capture's validity-keyed cache entry.
    let bfly = |v: usize| {
        let mut prog: Program<u64, u64> = Program::new(v, v);
        let log_v = prog.log_v();
        for l in 0..log_v {
            let d = v >> (l + 1);
            prog.step(l, "bfly-dyn", move |st, ctx, inbox, out| {
                for m in inbox.drain(..) {
                    *st = st.wrapping_mul(31).wrapping_add(m);
                }
                out.send(ctx.vp ^ d, *st);
            });
        }
        prog.step(log_v - 1, "bfly-consume", |st, _ctx, inbox, _out| {
            for m in inbox.drain(..) {
                *st = st.wrapping_mul(31).wrapping_add(m);
            }
        });
        prog
    };
    let keys = random_keys(v, 7);
    let dyn_baseline = run(
        &bfly(v),
        keys.clone(),
        &RunOptions { workers: Some(1), use_plans: false, ..Default::default() },
    )
    .expect("dynamic baseline");
    let bsrv: JobServer<u64, u64> =
        JobServer::new(ServerConfig::with_shards(4)).expect("server");
    let bkey = ShapeKey { algo: "bfly-dyn", variant: 0 };
    for pass in 0..2 {
        let res = bsrv
            .submit_captured(JobSpec::new(bkey), keys.clone(), move || bfly(v))
            .expect("submit captured")
            .wait()
            .expect("captured job");
        assert_eq!(res.states, dyn_baseline.states, "captured replay diverged (pass {pass})");
    }
    let bstats = bsrv.stats();
    assert_eq!(bstats.cache_misses, 1, "first captured job must miss");
    assert_eq!(bstats.cache_hits, 1, "identical captured resubmit must hit");

    // Server telemetry snapshot: every popped job must be accounted as
    // exactly one cache hit or miss — the invariant bench_smoke.sh
    // re-checks with jq from the emitted file.
    let report = sink.server_report();
    assert!(report.jobs > 0, "armed smoke server saw no jobs");
    assert_eq!(
        report.jobs,
        report.cache_hits + report.cache_misses,
        "jobs != cache_hits + cache_misses in server telemetry"
    );
    assert!(report.service_nanos > 0, "no service time recorded");
    assert!(report.dispatch_count > 0, "no dispatches recorded");
    if let Some(path) = snapshot_out {
        std::fs::write(path, report.to_json() + "\n").expect("write telemetry snapshot");
        println!("exp_server smoke: telemetry snapshot -> {path}");
    }

    println!(
        "exp_server smoke: OK (cold/warm/captured/serial-path jobs bit-for-bit at v = {v} \
         on a persistent 4-worker gang; faulted job isolated, gang serviceable after)"
    );
}
