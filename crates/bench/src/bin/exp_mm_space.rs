//! E3 (§4.1.1) — the space-efficient n-MM algorithm.
//!
//! Regenerates `H_MM-space(n, p, σ)` against the `n/√p + σ·√p` closed form
//! and the Irony–Toledo–Tiskin lower bound `Ω(n/√p)` for constant-memory
//! algorithms, and contrasts the memory footprint with the 8-way algorithm's
//! `Θ(n^{1/3})` blow-up.

use nob_algos::mm::space::SpaceEfficientMm;
use nob_algos::mm::standard::RecursiveMm;
use nob_algos::semiring::WrapU64;
use nob_bench::{fmt, random_mm, Table};
use nob_core::lower_bounds;
use nob_machine::{execute, RunOptions};

fn main() {
    let n = 4096usize;
    let input = random_mm(n, 3);
    let (_, t_spc) =
        execute(&SpaceEfficientMm::<WrapU64>::default(), n, &input, &RunOptions::default())
            .unwrap();
    let (_, t_rec) =
        execute(&RecursiveMm::<WrapU64>::default(), n, &input, &RunOptions::default()).unwrap();

    for &sigma in &[0.0f64, 4.0] {
        let mut tab =
            Table::new(&["p", "H_space", "n/sqrt(p)+s*sqrt(p)", "ratio", "LB(ITT)", "H/LB", "H_rec"]);
        let mut p = 4usize;
        while p <= n {
            let h = t_spc.comm_complexity(p, sigma);
            let th = lower_bounds::upper::mm_space(n, p, sigma);
            let lb = lower_bounds::mm_space(n, p, sigma);
            tab.row(vec![
                p.to_string(),
                fmt(h),
                fmt(th),
                fmt(h / th),
                fmt(lb),
                fmt(h / lb),
                fmt(t_rec.comm_complexity(p, sigma)),
            ]);
            p *= 4;
        }
        tab.print(&format!("E3: space-efficient n-MM, n = {n}, sigma = {sigma}"));
    }
    println!("\nper-VP entries held: space-efficient = 3 (A,B,C); 8-way recursive = Theta(n^(1/3)) = {}", (n as f64).powf(1.0 / 3.0) as usize);
}
