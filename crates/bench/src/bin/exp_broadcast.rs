//! E8 (Thm 4.15) — the broadcast lower bound and the matching σ-aware
//! algorithm.
//!
//! Regenerates `H` of the κ-ary tree (κ tuned to σ) against the
//! `Ω(max{2,σ}·log_{max{2,σ}} p)` lower bound across a (p, σ) grid — the
//! ratio stays bounded, certifying tightness.

use nob_algos::broadcast::AwareBroadcast;
use nob_bench::{fmt, Table};
use nob_core::lower_bounds;
use nob_machine::{execute, RunOptions};

fn main() {
    let n = 1usize << 14;
    let mut tab = Table::new(&["p", "sigma", "kappa", "H_aware", "LB(4.15)", "H/LB"]);
    for &p in &[16usize, 256, 4096, n] {
        for &sigma in &[0.0f64, 2.0, 16.0, 256.0, 4096.0] {
            let alg = AwareBroadcast::for_sigma(sigma);
            let (_, trace) = execute(&alg, n, &1u64, &RunOptions::default()).unwrap();
            let h = trace.comm_complexity(p, sigma);
            let lb = lower_bounds::broadcast(p, sigma);
            tab.row(vec![
                p.to_string(),
                fmt(sigma),
                alg.kappa.to_string(),
                fmt(h),
                fmt(lb),
                fmt(h / lb),
            ]);
        }
    }
    tab.print(&format!("E8: n-broadcast (n = {n}), sigma-aware kappa-ary tree vs Thm 4.15"));
}
