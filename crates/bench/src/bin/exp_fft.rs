//! E4 (Thm 4.5 / Cor 4.6) — communication complexity of the recursive n-FFT.
//!
//! Regenerates `H_FFT(n, p, σ)` against the `(n/p + σ)·log n/log(n/p)` form,
//! the Lemma-4.4 lower bound, the binary-exchange baseline, and the D-BSP
//! communication times of Corollary 4.6.

use nob_algos::fft::{BinaryExchangeFft, RecursiveFft};
use nob_bench::{fmt, test_signal, Table};
use nob_core::{lower_bounds, machines};
use nob_machine::{execute, RunOptions};

fn main() {
    for &n in &[256usize, 4096] {
        let xs = test_signal(n);
        let (_, t_rec) =
            execute(&RecursiveFft::default(), n, &xs[..], &RunOptions::default()).unwrap();
        let (_, t_plain) =
            execute(&RecursiveFft::new(false), n, &xs[..], &RunOptions::default()).unwrap();
        let (_, t_bin) = execute(&BinaryExchangeFft, n, &xs[..], &RunOptions::default()).unwrap();

        for &sigma in &[0.0f64, 8.0] {
            let mut tab = Table::new(&[
                "p",
                "H_rec",
                "H_rec(no dummies)",
                "Thm4.5",
                "H/Thm",
                "LB(4.4)",
                "H/LB",
                "H_binex",
                "binex/rec'",
            ]);
            let mut p = 2usize;
            while p <= n {
                let h = t_rec.comm_complexity(p, sigma);
                let hp = t_plain.comm_complexity(p, sigma);
                let th = lower_bounds::upper::fft(n, p, sigma);
                let lb = lower_bounds::fft(n, p, sigma);
                let hb = t_bin.comm_complexity(p, sigma);
                tab.row(vec![
                    p.to_string(),
                    fmt(h),
                    fmt(hp),
                    fmt(th),
                    fmt(h / th),
                    fmt(lb),
                    fmt(h / lb),
                    fmt(hb),
                    fmt(hb / hp),
                ]);
                p *= 4;
            }
            tab.print(&format!("E4: n-FFT, n = {n}, sigma = {sigma}"));
        }

        let mut tab = Table::new(&["machine", "D_rec", "D_binex", "binex/rec"]);
        for m in machines::standard_suite(64.min(n)) {
            let dr = t_rec.comm_time(&m);
            let db = t_bin.comm_time(&m);
            tab.row(vec![m.name.clone(), fmt(dr), fmt(db), fmt(db / dr)]);
        }
        tab.print(&format!("E4/Cor 4.6: n-FFT on D-BSP, n = {n}, p = {}", 64.min(n)));
    }
}
