//! E9 (Thm 4.16) — the oblivious-broadcast optimality gap.
//!
//! A network-oblivious broadcast fixes its superstep count t; Thm 4.16 then
//! forces `GAP(σ1, σ2) = Ω(log σ2 / (log σ1 + log log σ2))`. We measure the
//! gap of the cluster-halving oblivious tree (t = log p) against the best
//! σ-aware algorithm across σ, and compare its growth with the predicted
//! form.

use nob_algos::broadcast::{measured_gap, AwareBroadcast, ObliviousBroadcast};
use nob_bench::{fmt, Table};
use nob_machine::{execute, RunOptions};

fn main() {
    let n = 1usize << 14;
    let p = n;
    let (_, t_obl) = execute(&ObliviousBroadcast, n, &1u64, &RunOptions::default()).unwrap();

    let sigma1 = 2.0f64;
    let mut tab = Table::new(&["sigma2", "H_oblivious", "H_aware", "GAP", "Thm4.16 shape"]);
    for &sigma2 in &[2.0f64, 8.0, 64.0, 512.0, 4096.0, 32768.0] {
        let aware = AwareBroadcast::for_sigma(sigma2);
        let (_, t_aw) = execute(&aware, n, &1u64, &RunOptions::default()).unwrap();
        let gap = measured_gap(&t_obl, &t_aw, p, sigma2);
        let predicted = sigma2.max(2.0).log2()
            / (sigma1.log2() + sigma2.max(2.0).log2().max(2.0).log2());
        tab.row(vec![
            fmt(sigma2),
            fmt(t_obl.comm_complexity(p, sigma2)),
            fmt(t_aw.comm_complexity(p, sigma2)),
            fmt(gap),
            fmt(predicted),
        ]);
    }
    tab.print(&format!(
        "E9: oblivious broadcast gap, n = p = {n} (GAP must grow ~ log sigma2 / (log sigma1 + log log sigma2))"
    ));

    // The structural reason (Thm 4.16's proof): an oblivious algorithm fixes
    // its fan-out κ (equivalently its superstep count t); every fixed κ is
    // bad for some σ. No row of this table is within O(1) of the diagonal
    // everywhere.
    let kappas = [2usize, 16, 256];
    let mut tab = Table::new(&["sigma", "H(k=2)", "H(k=16)", "H(k=256)", "H(tuned k)"]);
    for &sigma in &[0.0f64, 4.0, 64.0, 1024.0, 16384.0] {
        let mut cells = vec![fmt(sigma)];
        for &k in &kappas {
            let alg = AwareBroadcast { kappa: k };
            let (_, t) = execute(&alg, n, &1u64, &RunOptions::default()).unwrap();
            cells.push(fmt(t.comm_complexity(p, sigma)));
        }
        let tuned = AwareBroadcast::for_sigma(sigma);
        let (_, t) = execute(&tuned, n, &1u64, &RunOptions::default()).unwrap();
        cells.push(fmt(t.comm_complexity(p, sigma)));
        tab.row(cells);
    }
    tab.print("E9: every fixed fan-out loses somewhere (the obliviousness obstruction)");
}
