//! E7 (Thm 4.13 / Cor 4.14) — the (n,2)-stencil octahedron/tetrahedron
//! algorithm on M(n²).
//!
//! Regenerates `H_2-stencil(n, p, σ)` against `(n²/√p)·8^√log n` and the
//! Lemma-4.10 lower bound `Ω(n²/√p)`, plus the naive baseline.

use nob_algos::stencil2::{NaiveStencil2, OctaStencil, WrapSum2Op};
use nob_bench::{fmt, Table};
use nob_core::lower_bounds;
use nob_machine::{execute, RunOptions};

fn main() {
    for &n in &[8usize, 16] {
        let xs: Vec<u64> =
            (0..(n * n) as u64).map(|x| x.wrapping_mul(0x9e37_79b9) % 911).collect();
        let (_, t_o) =
            execute(&OctaStencil::<WrapSum2Op>::default(), n, &xs[..], &RunOptions::default())
                .unwrap();
        let (_, t_n) =
            execute(&NaiveStencil2::<WrapSum2Op>::default(), n, &xs[..], &RunOptions::default())
                .unwrap();

        let mut tab = Table::new(&["p", "sigma", "H_octa", "H_naive", "naive/octa", "H_o/Thm4.13", "H_o/LB"]);
        let v = n * n;
        for &p in &[4usize, 16, 64] {
            if p > v {
                continue;
            }
            for sigma in [0.0, (v / p) as f64] {
                let ho = t_o.comm_complexity(p, sigma);
                let hn = t_n.comm_complexity(p, sigma);
                let th = lower_bounds::upper::stencil2(n, p, sigma);
                let lb = lower_bounds::stencil(n, 2, p, sigma);
                tab.row(vec![
                    p.to_string(),
                    fmt(sigma),
                    fmt(ho),
                    fmt(hn),
                    fmt(hn / ho),
                    fmt(ho / th),
                    fmt(ho / lb),
                ]);
            }
        }
        tab.print(&format!("E7: (n,2)-stencil, n = {n} (v = {v})"));
    }
}
