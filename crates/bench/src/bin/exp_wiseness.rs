//! E12 (Def 3.2 / Def 5.2) — measured wiseness α and fullness γ.
//!
//! For every Section-4 algorithm, with and without the paper's dummy
//! messages: the dummies are exactly what lifts α to Θ(1) (the paper's
//! claim), while fullness is less sensitive.

use nob_algos::fft::RecursiveFft;
use nob_algos::mm::space::SpaceEfficientMm;
use nob_algos::mm::standard::RecursiveMm;
use nob_algos::semiring::WrapU64;
use nob_algos::sort::ColumnSort;
use nob_bench::{fmt, random_keys, random_mm, test_signal, Table};
use nob_core::{fullness, wiseness, CommTrace};
use nob_machine::{execute, RunOptions};

fn main() {
    let mut tab = Table::new(&["algorithm", "dummies", "alpha(p=v)", "binding fold", "gamma(p=v)"]);
    let mut add = |name: &str, wise: bool, trace: &CommTrace| {
        let v = trace.v();
        let w = wiseness::alpha_max(trace, v);
        let f = fullness::gamma_max(trace, v);
        tab.row(vec![
            name.to_string(),
            wise.to_string(),
            fmt(w.alpha),
            format!("{:?}", w.binding_fold),
            fmt(f.gamma),
        ]);
    };

    let n = 4096usize;
    let input = random_mm(n, 9);
    for wise in [true, false] {
        let (_, t) = execute(&RecursiveMm::<WrapU64>::new(wise), n, &input, &RunOptions::default())
            .unwrap();
        add("mm-recursive", wise, &t);
        let (_, t) =
            execute(&SpaceEfficientMm::<WrapU64>::new(wise), n, &input, &RunOptions::default())
                .unwrap();
        add("mm-space", wise, &t);
    }
    let n = 1024usize;
    let xs = test_signal(n);
    for wise in [true, false] {
        let (_, t) = execute(&RecursiveFft::new(wise), n, &xs[..], &RunOptions::default()).unwrap();
        add("fft-recursive", wise, &t);
    }
    let keys = random_keys(n, 13);
    for wise in [true, false] {
        let (_, t) =
            execute(&ColumnSort::<u64>::new(wise), n, &keys[..], &RunOptions::default()).unwrap();
        add("sort-columnsort", wise, &t);
    }
    tab.print("E12: measured wiseness / fullness (Definitions 3.2 and 5.2)");
}
