//! E2 (Cor 4.3) — communication time of n-MM on D-BSP machines.
//!
//! Regenerates `D(n, p, g, ℓ)` for the recursive algorithm, the
//! space-efficient variant and Cannon's baseline on the standard machine
//! suite; Corollary 4.3 predicts the recursive algorithm is Θ(1)-optimal on
//! the machines with non-increasing g and ℓ/g and `ℓ_0/g_0 = O(n/p)`.

use nob_algos::mm::cannon::CannonMm;
use nob_algos::mm::space::SpaceEfficientMm;
use nob_algos::mm::standard::RecursiveMm;
use nob_algos::semiring::WrapU64;
use nob_bench::{fmt, random_mm, Table};
use nob_core::machines;
use nob_machine::{execute, RunOptions};

fn main() {
    let n = 4096usize;
    let input = random_mm(n, 7);
    let (_, t_rec) =
        execute(&RecursiveMm::<WrapU64>::default(), n, &input, &RunOptions::default()).unwrap();
    let (_, t_spc) =
        execute(&SpaceEfficientMm::<WrapU64>::default(), n, &input, &RunOptions::default())
            .unwrap();
    let (_, t_can) =
        execute(&CannonMm::<WrapU64>::default(), n, &input, &RunOptions::default()).unwrap();

    for &p in &[64usize, 512] {
        let mut tab = Table::new(&["machine", "D_rec", "D_space", "D_cannon", "cannon/rec", "l0/g0<=n/p"]);
        for m in machines::standard_suite(p) {
            let dr = t_rec.comm_time(&m);
            let ds = t_spc.comm_time(&m);
            let dc = t_can.comm_time(&m);
            let cond = m.ell[0] / m.g[0] <= (n / p) as f64;
            tab.row(vec![
                m.name.clone(),
                fmt(dr),
                fmt(ds),
                fmt(dc),
                fmt(dc / dr),
                cond.to_string(),
            ]);
        }
        tab.print(&format!("E2: n-MM on D-BSP, n = {n}, p = {p}"));
    }
}
