//! E14 — D-BSP describes point-to-point networks (the §1/§2 premise).
//!
//! Fits per-cluster `(g_i, ℓ_i)` from routed h-relations on the mesh and
//! hypercube simulators, compares them with the analytic presets, and checks
//! D-BSP's predictive power: predicted `D` (with fitted parameters) vs the
//! directly simulated routing time of the FFT's message log.

use nob_algos::fft::RecursiveFft;
use nob_bench::{fmt, test_signal, Table};
use nob_core::machines;
use nob_machine::execute_with_log;
use nob_networks::{fit_dbsp, simulate_trace, Hypercube, LinearArray, Mesh2D, Topology, Torus2D};

fn main() {
    let p = 64usize;
    let mesh = Mesh2D::new(p);
    let cube = Hypercube::new(p);
    let torus = Torus2D::new(p);
    let array = LinearArray::new(p);
    let fit_m = fit_dbsp(&mesh, 42);
    let fit_h = fit_dbsp(&cube, 42);
    let fit_t = fit_dbsp(&torus, 42);
    let fit_a = fit_dbsp(&array, 42);
    let preset_m = machines::mesh2d(p);
    let preset_h = machines::hypercube(p);
    let preset_a = machines::linear_array(p);

    let mut tab = Table::new(&[
        "level",
        "mesh g fit",
        "mesh g preset",
        "torus g fit",
        "array g fit",
        "array g preset",
        "cube g fit",
        "cube g preset",
    ]);
    for i in 0..p.trailing_zeros() as usize {
        tab.row(vec![
            i.to_string(),
            fmt(fit_m.machine.g[i]),
            fmt(preset_m.g[i]),
            fmt(fit_t.machine.g[i]),
            fmt(fit_a.machine.g[i]),
            fmt(preset_a.g[i]),
            fmt(fit_h.machine.g[i]),
            fmt(preset_h.g[i]),
        ]);
    }
    tab.print(&format!("E14: fitted vs preset D-BSP parameters, p = {p}"));

    // Predictive power on a real trace.
    let n = 1024usize;
    let xs = test_signal(n);
    let (_, trace, log) = execute_with_log(&RecursiveFft::new(false), n, &xs[..]).unwrap();
    let mut tab = Table::new(&["network", "D predicted (fit)", "routing simulated", "pred/sim"]);
    for (name, predicted, simulated) in [
        (mesh.name(), trace.comm_time(&fit_m.machine), simulate_trace(&mesh, &trace, &log) as f64),
        (cube.name(), trace.comm_time(&fit_h.machine), simulate_trace(&cube, &trace, &log) as f64),
    ] {
        tab.row(vec![name, fmt(predicted), fmt(simulated), fmt(predicted / simulated)]);
    }
    tab.print(&format!("E14: D-BSP prediction vs packet simulation (n-FFT, n = {n}, p = {p})"));
}
