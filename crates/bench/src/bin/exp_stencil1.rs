//! E6 (Thm 4.11 / Cor 4.12) — the (n,1)-stencil diamond algorithm.
//!
//! Regenerates `H_1-stencil(n, p, σ)` against `n·4^√log n`, the Lemma-4.10
//! lower bound `Ω(n)`, the naive time-stepping baseline, and the σ-crossover
//! where the oblivious decomposition starts winning; plus Cor 4.12's D-BSP
//! communication times.

use nob_algos::stencil::{DiamondStencil, NaiveStencil, WrapSumOp};
use nob_bench::{fmt, stencil_input, Table};
use nob_core::{lower_bounds, machines};
use nob_machine::{execute, RunOptions};

fn main() {
    for &n in &[64usize, 256] {
        let xs = stencil_input(n);
        let (_, t_d) =
            execute(&DiamondStencil::<WrapSumOp>::default(), n, &xs[..], &RunOptions::default())
                .unwrap();
        let (_, t_n) =
            execute(&NaiveStencil::<WrapSumOp>::default(), n, &xs[..], &RunOptions::default())
                .unwrap();

        let mut tab = Table::new(&["p", "sigma", "H_diamond", "H_naive", "naive/diamond", "H_d/Thm4.11", "H_d/LB"]);
        for &p in &[4usize, 8, 16] {
            for sigma in [0.0, 1.0, (n / p) as f64] {
                let hd = t_d.comm_complexity(p, sigma);
                let hn = t_n.comm_complexity(p, sigma);
                let th = lower_bounds::upper::stencil1(n, p, sigma);
                let lb = lower_bounds::stencil(n, 1, p, sigma);
                tab.row(vec![
                    p.to_string(),
                    fmt(sigma),
                    fmt(hd),
                    fmt(hn),
                    fmt(hn / hd),
                    fmt(hd / th),
                    fmt(hd / lb),
                ]);
            }
        }
        tab.print(&format!("E6: (n,1)-stencil, n = {n}"));

        let mut tab = Table::new(&["machine", "D_diamond", "D_naive", "naive/diamond"]);
        for m in machines::standard_suite(8) {
            tab.row(vec![
                m.name.clone(),
                fmt(t_d.comm_time(&m)),
                fmt(t_n.comm_time(&m)),
                fmt(t_n.comm_time(&m) / t_d.comm_time(&m)),
            ]);
        }
        tab.print(&format!("E6/Cor 4.12: (n,1)-stencil on D-BSP, n = {n}, p = 8"));
    }
}
