//! E5 (Thm 4.8 / Cor 4.9) — communication complexity of recursive Columnsort.
//!
//! Regenerates `H_sort(n, p, σ)` against the
//! `(n/p + σ)·(log n/log(n/p))^{log_{3/2} 4}` closed form and the bitonic
//! baseline at simulable sizes; then, because both algorithms are static,
//! reads their *schedules* (superstep label sequences) at large n to locate
//! the Columnsort/bitonic crossover that direct simulation cannot reach.

use nob_algos::sort::{BitonicSort, ColumnSort};
use nob_bench::{fmt, random_keys, Table};
use nob_core::lower_bounds;
use nob_machine::{execute, NobAlgorithm, RunOptions};

fn crossing_steps<A: NobAlgorithm>(alg: &A, n: usize, p: usize) -> usize {
    let log_p = p.trailing_zeros();
    alg.build(n).labels().iter().filter(|&&l| l < log_p).count()
}

fn main() {
    let col = ColumnSort::<u64>::default();
    let bit = BitonicSort::<u64>::default();

    for &n in &[512usize, 4096] {
        let keys = random_keys(n, 23);
        let (_, t_col) = execute(&col, n, &keys[..], &RunOptions::default()).unwrap();
        let (_, t_bit) = execute(&bit, n, &keys[..], &RunOptions::default()).unwrap();
        for &sigma in &[0.0f64, 8.0] {
            let mut tab = Table::new(&[
                "p",
                "H_colsort",
                "Thm4.8",
                "H/Thm",
                "LB(4.7)",
                "H/LB",
                "H_bitonic",
                "bitonic/col",
            ]);
            let mut p = 2usize;
            while p <= n {
                let h = t_col.comm_complexity(p, sigma);
                let th = lower_bounds::upper::sort(n, p, sigma);
                let lb = lower_bounds::sort(n, p, sigma);
                let hb = t_bit.comm_complexity(p, sigma);
                tab.row(vec![
                    p.to_string(),
                    fmt(h),
                    fmt(th),
                    fmt(h / th),
                    fmt(lb),
                    fmt(h / lb),
                    fmt(hb),
                    fmt(hb / h),
                ]);
                p *= 4;
            }
            tab.print(&format!("E5: n-sort, n = {n}, sigma = {sigma}"));
        }
    }

    // Schedule-level crossover study at p = √n (Cor 4.9 regime p = n^{1−δ},
    // δ = 1/2): crossing-superstep counts are the H(n,p,0)/(n/p) shape.
    let mut tab = Table::new(&["n", "p=sqrt(n)", "colsort steps", "bitonic steps", "winner"]);
    for lg in [12u32, 14, 16, 18, 20, 22] {
        let n = 1usize << lg;
        let p = 1usize << (lg / 2);
        let c = crossing_steps(&col, n, p);
        let b = crossing_steps(&bit, n, p);
        tab.row(vec![
            format!("2^{lg}"),
            p.to_string(),
            c.to_string(),
            b.to_string(),
            if c < b { "columnsort" } else { "bitonic" }.to_string(),
        ]);
    }
    tab.print("E5: schedule-predicted crossover (crossing supersteps at p = sqrt(n))");
}
