//! # nob-bench — experiment regenerators and benches
//!
//! One `exp_*` binary per paper result (see DESIGN.md §4 for the full E1–E14
//! index); each prints the measured-vs-theory tables recorded in
//! EXPERIMENTS.md. This library holds the shared workload generators and the
//! table printer.

#![forbid(unsafe_code)]

use nob_algos::fft::Complex;
use nob_algos::mm::MmInput;
use nob_algos::semiring::{Matrix, WrapU64};

/// Deterministic xorshift stream for workload generation.
pub fn xorshift(seed: u64) -> impl FnMut() -> u64 {
    let mut state = seed | 1;
    move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    }
}

/// A random integer n-MM instance (side √n).
pub fn random_mm(n: usize, seed: u64) -> MmInput<WrapU64> {
    let s = (n as f64).sqrt() as usize;
    assert_eq!(s * s, n);
    let mut rng = xorshift(seed);
    let a = Matrix::from_fn(s, |_, _| WrapU64(rng() % 1000));
    let b = Matrix::from_fn(s, |_, _| WrapU64(rng() % 1000));
    MmInput::new(a, b)
}

/// A deterministic multi-tone test signal.
pub fn test_signal(n: usize) -> Vec<Complex> {
    (0..n)
        .map(|t| {
            let th = 2.0 * std::f64::consts::PI * t as f64 / n as f64;
            Complex::new((3.0 * th).cos() + 0.5 * (17.0 * th).cos(), 0.25 * (5.0 * th).sin())
        })
        .collect()
}

/// Random sort keys.
pub fn random_keys(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = xorshift(seed);
    (0..n).map(|_| rng()).collect()
}

/// Random stencil input row.
pub fn stencil_input(n: usize) -> Vec<u64> {
    (0..n as u64).map(|x| x.wrapping_mul(0x9e37_79b9) % 1009).collect()
}

/// Markdown table printer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends one row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
        self
    }

    /// Prints the table in GitHub-flavoured markdown.
    pub fn print(&self, title: &str) {
        println!("\n### {title}\n");
        let widths: Vec<usize> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| {
                self.rows.iter().map(|r| r[i].len()).chain([h.len()]).max().unwrap_or(4)
            })
            .collect();
        let line = |cells: &[String]| {
            let body: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            println!("| {} |", body.join(" | "));
        };
        line(&self.headers);
        println!(
            "|{}|",
            widths.iter().map(|w| "-".repeat(w + 2)).collect::<Vec<_>>().join("|")
        );
        for r in &self.rows {
            line(r);
        }
    }
}

/// Formats a float compactly for table cells.
pub fn fmt(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 1000.0 || x.abs() < 0.01 {
        format!("{x:.3e}")
    } else {
        format!("{x:.2}")
    }
}
