//! Ascend–descend protocol rewriter benches (Section 5).

use criterion::{criterion_group, criterion_main, Criterion};
use nob_core::metrics::{CommTrace, SuperstepRecord};
use nob_machine::protocol::ascend_descend;
use std::hint::black_box;

fn single_sender(v: usize, n: u64) -> (CommTrace, Vec<Vec<(u32, u32)>>) {
    let log_v = v.trailing_zeros();
    let mut t = CommTrace::new(v, n as usize);
    let msgs: Vec<(u32, u32)> = (0..n).map(|_| (0u32, (v / 2) as u32)).collect();
    t.steps.push(SuperstepRecord::from_counted_edges(0, log_v, &[(0, v / 2, n)]));
    (t, vec![msgs])
}

fn bench_protocol(c: &mut Criterion) {
    let mut g = c.benchmark_group("ascend-descend");
    g.sample_size(10);
    for &(v, burst) in &[(256usize, 4096u64), (1024, 16384)] {
        let (trace, log) = single_sender(v, burst);
        g.bench_function(format!("rewrite/v={v}/burst={burst}"), |b| {
            b.iter(|| ascend_descend(black_box(&trace), black_box(&log), 64))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_protocol);
criterion_main!(benches);
