//! Engine micro-benches: superstep execution and metric-recording
//! throughput, full-granularity vs folded execution.

use criterion::{criterion_group, criterion_main, Criterion};
use nob_machine::{run, run_folded, Program, RunOptions};
use std::hint::black_box;

/// A butterfly-exchange program: `log v` supersteps, every VP sends one
/// message per superstep (the densest per-VP communication pattern).
fn butterfly(v: usize) -> Program<u64, u64> {
    let mut prog: Program<u64, u64> = Program::new(v, v);
    let log_v = prog.log_v();
    for l in 0..log_v {
        let d = v >> (l + 1);
        prog.step(l, "bfly", move |st, ctx, inbox, out| {
            for m in inbox.drain(..) {
                *st = st.wrapping_add(m);
            }
            out.send(ctx.vp ^ d, *st);
        });
    }
    prog
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.sample_size(10);
    for &v in &[1usize << 10, 1 << 14] {
        let prog = butterfly(v);
        let states: Vec<u64> = (0..v as u64).collect();
        g.bench_function(format!("full/v={v}"), |b| {
            b.iter(|| run(&prog, black_box(states.clone()), &RunOptions::default()).unwrap())
        });
        g.bench_function(format!("full-novalidate/v={v}"), |b| {
            let opts = RunOptions { validate: false, ..Default::default() };
            b.iter(|| run(&prog, black_box(states.clone()), &opts).unwrap())
        });
        g.bench_function(format!("folded-p16/v={v}"), |b| {
            b.iter(|| {
                run_folded(&prog, black_box(states.clone()), 16, &RunOptions::default()).unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
