//! Network-simulator benches: h-relation routing throughput and the
//! D-BSP fitting procedure.

use criterion::{criterion_group, criterion_main, Criterion};
use nob_networks::{fit_dbsp, route_h_relation, Hypercube, Mesh2D};
use std::hint::black_box;

fn bench_routing(c: &mut Criterion) {
    let mut g = c.benchmark_group("routing");
    g.sample_size(10);
    let p = 256;
    // A fixed pseudo-random 4-relation.
    let mut seed = 1u64;
    let mut rng = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed as usize
    };
    let msgs: Vec<(usize, usize)> =
        (0..4 * p).map(|i| (i % p, rng() % p)).collect();
    let mesh = Mesh2D::new(p);
    let cube = Hypercube::new(p);
    g.bench_function("mesh2d/p=256/h=4", |b| {
        b.iter(|| route_h_relation(&mesh, black_box(&msgs)))
    });
    g.bench_function("hypercube/p=256/h=4", |b| {
        b.iter(|| route_h_relation(&cube, black_box(&msgs)))
    });
    g.finish();
}

fn bench_fitting(c: &mut Criterion) {
    let mut g = c.benchmark_group("fitting");
    g.sample_size(10);
    let mesh = Mesh2D::new(64);
    g.bench_function("fit_dbsp/mesh2d/p=64", |b| b.iter(|| fit_dbsp(&mesh, black_box(42))));
    g.finish();
}

criterion_group!(benches, bench_routing, bench_fitting);
criterion_main!(benches);
