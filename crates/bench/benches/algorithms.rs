//! Criterion wall-time benches for the superstep VM running each Section-4
//! algorithm (harness health; the paper-facing metrics are in the `exp_*`
//! binaries). One group per algorithm family.

use criterion::{criterion_group, criterion_main, Criterion};
use nob_algos::broadcast::ObliviousBroadcast;
use nob_algos::fft::{BinaryExchangeFft, RecursiveFft};
use nob_algos::mm::cannon::CannonMm;
use nob_algos::mm::space::SpaceEfficientMm;
use nob_algos::mm::standard::RecursiveMm;
use nob_algos::semiring::WrapU64;
use nob_algos::sort::{BitonicSort, ColumnSort};
use nob_algos::stencil::{DiamondStencil, NaiveStencil, WrapSumOp};
use nob_bench::{random_keys, random_mm, stencil_input, test_signal};
use nob_machine::{execute, RunOptions};
use std::hint::black_box;

fn bench_mm(c: &mut Criterion) {
    let mut g = c.benchmark_group("mm");
    g.sample_size(10);
    let n = 4096;
    let input = random_mm(n, 42);
    g.bench_function("recursive/n=4096", |b| {
        b.iter(|| {
            execute(
                &RecursiveMm::<WrapU64>::default(),
                n,
                black_box(&input),
                &RunOptions::default(),
            )
            .unwrap()
        })
    });
    g.bench_function("space/n=4096", |b| {
        b.iter(|| {
            execute(
                &SpaceEfficientMm::<WrapU64>::default(),
                n,
                black_box(&input),
                &RunOptions::default(),
            )
            .unwrap()
        })
    });
    g.bench_function("cannon/n=4096", |b| {
        b.iter(|| {
            execute(&CannonMm::<WrapU64>::default(), n, black_box(&input), &RunOptions::default())
                .unwrap()
        })
    });
    g.finish();
}

fn bench_fft(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft");
    g.sample_size(10);
    let n = 4096;
    let xs = test_signal(n);
    g.bench_function("recursive/n=4096", |b| {
        b.iter(|| {
            execute(&RecursiveFft::default(), n, black_box(&xs[..]), &RunOptions::default())
                .unwrap()
        })
    });
    g.bench_function("binary-exchange/n=4096", |b| {
        b.iter(|| {
            execute(&BinaryExchangeFft, n, black_box(&xs[..]), &RunOptions::default()).unwrap()
        })
    });
    g.finish();
}

fn bench_sort(c: &mut Criterion) {
    let mut g = c.benchmark_group("sort");
    g.sample_size(10);
    let n = 1024;
    let keys = random_keys(n, 7);
    g.bench_function("columnsort/n=1024", |b| {
        b.iter(|| {
            execute(&ColumnSort::<u64>::default(), n, black_box(&keys[..]), &RunOptions::default())
                .unwrap()
        })
    });
    g.bench_function("bitonic/n=1024", |b| {
        b.iter(|| {
            execute(
                &BitonicSort::<u64>::default(),
                n,
                black_box(&keys[..]),
                &RunOptions::default(),
            )
            .unwrap()
        })
    });
    g.finish();
}

fn bench_stencil(c: &mut Criterion) {
    let mut g = c.benchmark_group("stencil");
    g.sample_size(10);
    let n = 128;
    let xs = stencil_input(n);
    g.bench_function("diamond/n=128", |b| {
        b.iter(|| {
            execute(
                &DiamondStencil::<WrapSumOp>::default(),
                n,
                black_box(&xs[..]),
                &RunOptions::default(),
            )
            .unwrap()
        })
    });
    g.bench_function("naive/n=128", |b| {
        b.iter(|| {
            execute(
                &NaiveStencil::<WrapSumOp>::default(),
                n,
                black_box(&xs[..]),
                &RunOptions::default(),
            )
            .unwrap()
        })
    });
    g.finish();
}

fn bench_broadcast(c: &mut Criterion) {
    let mut g = c.benchmark_group("broadcast");
    g.sample_size(10);
    let n = 1 << 14;
    g.bench_function("oblivious/n=16384", |b| {
        b.iter(|| execute(&ObliviousBroadcast, n, black_box(&7u64), &RunOptions::default()).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_mm, bench_fft, bench_sort, bench_stencil, bench_broadcast);
criterion_main!(benches);
