//! Network topologies with deterministic minimal routing.

/// A point-to-point topology over processors `0..p` with a deterministic
/// next-hop routing function.
pub trait Topology: Sync {
    /// Number of processors (a power of two).
    fn p(&self) -> usize;
    /// The next node on the route from `from` towards `to` (`from ≠ to`).
    fn next_hop(&self, from: usize, to: usize) -> usize;
    /// Routing distance (for sanity checks and latency floors).
    fn distance(&self, from: usize, to: usize) -> usize {
        let mut cur = from;
        let mut d = 0;
        while cur != to {
            cur = self.next_hop(cur, to);
            d += 1;
        }
        d
    }
    /// Preset name.
    fn name(&self) -> String;
}

#[inline]
fn part1by1(mut x: usize) -> usize {
    x &= 0xffff_ffff;
    x = (x | (x << 16)) & 0x0000_ffff_0000_ffff;
    x = (x | (x << 8)) & 0x00ff_00ff_00ff_00ff;
    x = (x | (x << 4)) & 0x0f0f_0f0f_0f0f_0f0f;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    x = (x | (x << 1)) & 0x5555_5555_5555_5555;
    x
}

#[inline]
fn compact1by1(mut x: usize) -> usize {
    x &= 0x5555_5555_5555_5555;
    x = (x | (x >> 1)) & 0x3333_3333_3333_3333;
    x = (x | (x >> 2)) & 0x0f0f_0f0f_0f0f_0f0f;
    x = (x | (x >> 4)) & 0x00ff_00ff_00ff_00ff;
    x = (x | (x >> 8)) & 0x0000_ffff_0000_ffff;
    x = (x | (x >> 16)) & 0xffff_ffff;
    x
}

/// A √p×√p mesh (no wraparound) with dimension-order (X-then-Y) routing.
/// Processor `i` occupies the Morton position of `i`, so D-BSP i-clusters
/// are aligned submeshes.
#[derive(Debug, Clone, Copy)]
pub struct Mesh2D {
    side: usize,
}

impl Mesh2D {
    /// Builds a mesh with `p = side²` processors (`side` a power of two).
    pub fn new(p: usize) -> Mesh2D {
        assert!(p.is_power_of_two() && p.trailing_zeros().is_multiple_of(2), "p must be 4^m");
        Mesh2D { side: 1 << (p.trailing_zeros() / 2) }
    }

    /// Grid coordinates of processor `i`.
    #[inline]
    pub fn coords(&self, i: usize) -> (usize, usize) {
        (compact1by1(i >> 1), compact1by1(i))
    }

    /// Processor at grid coordinates `(r, c)`.
    #[inline]
    pub fn id(&self, r: usize, c: usize) -> usize {
        part1by1(r) << 1 | part1by1(c)
    }
}

impl Topology for Mesh2D {
    fn p(&self) -> usize {
        self.side * self.side
    }

    fn next_hop(&self, from: usize, to: usize) -> usize {
        let (r0, c0) = self.coords(from);
        let (r1, c1) = self.coords(to);
        if c0 != c1 {
            let c = if c1 > c0 { c0 + 1 } else { c0 - 1 };
            self.id(r0, c)
        } else {
            let r = if r1 > r0 { r0 + 1 } else { r0 - 1 };
            self.id(r, c0)
        }
    }

    fn distance(&self, from: usize, to: usize) -> usize {
        let (r0, c0) = self.coords(from);
        let (r1, c1) = self.coords(to);
        r0.abs_diff(r1) + c0.abs_diff(c1)
    }

    fn name(&self) -> String {
        format!("mesh2d({}x{})", self.side, self.side)
    }
}

/// A log p-dimensional hypercube with e-cube (ascending dimension) routing.
#[derive(Debug, Clone, Copy)]
pub struct Hypercube {
    log_p: u32,
}

impl Hypercube {
    /// Builds a hypercube with `p` processors (a power of two).
    pub fn new(p: usize) -> Hypercube {
        assert!(p.is_power_of_two());
        Hypercube { log_p: p.trailing_zeros() }
    }
}

impl Topology for Hypercube {
    fn p(&self) -> usize {
        1 << self.log_p
    }

    fn next_hop(&self, from: usize, to: usize) -> usize {
        let diff = from ^ to;
        debug_assert!(diff != 0);
        from ^ (1 << diff.trailing_zeros())
    }

    fn distance(&self, from: usize, to: usize) -> usize {
        (from ^ to).count_ones() as usize
    }

    fn name(&self) -> String {
        format!("hypercube(p={})", 1usize << self.log_p)
    }
}

/// A linear array (1D mesh) with the identity placement: processor `i` sits
/// at position `i`, so D-BSP i-clusters are contiguous subarrays.
#[derive(Debug, Clone, Copy)]
pub struct LinearArray {
    p: usize,
}

impl LinearArray {
    /// Builds a linear array of `p` processors (a power of two).
    pub fn new(p: usize) -> LinearArray {
        assert!(p.is_power_of_two());
        LinearArray { p }
    }
}

impl Topology for LinearArray {
    fn p(&self) -> usize {
        self.p
    }

    fn next_hop(&self, from: usize, to: usize) -> usize {
        if to > from {
            from + 1
        } else {
            from - 1
        }
    }

    fn distance(&self, from: usize, to: usize) -> usize {
        from.abs_diff(to)
    }

    fn name(&self) -> String {
        format!("array(p={})", self.p)
    }
}

/// A √p×√p torus (wraparound mesh) on the Morton placement, dimension-order
/// routing along the shorter way around each ring.
#[derive(Debug, Clone, Copy)]
pub struct Torus2D {
    side: usize,
}

impl Torus2D {
    /// Builds a torus with `p = side²` processors (`side` a power of two).
    pub fn new(p: usize) -> Torus2D {
        assert!(p.is_power_of_two() && p.trailing_zeros().is_multiple_of(2), "p must be 4^m");
        Torus2D { side: 1 << (p.trailing_zeros() / 2) }
    }

    fn ring_step(&self, from: usize, to: usize) -> usize {
        let s = self.side;
        let fwd = (to + s - from) % s;
        if fwd != 0 && fwd <= s / 2 {
            (from + 1) % s
        } else {
            (from + s - 1) % s
        }
    }

    /// Processor at grid coordinates `(r, c)`.
    pub fn id_of(&self, r: usize, c: usize) -> usize {
        part1by1(r) << 1 | part1by1(c)
    }
}

impl Topology for Torus2D {
    fn p(&self) -> usize {
        self.side * self.side
    }

    fn next_hop(&self, from: usize, to: usize) -> usize {
        let (r0, c0) = (compact1by1(from >> 1), compact1by1(from));
        let (r1, c1) = (compact1by1(to >> 1), compact1by1(to));
        if c0 != c1 {
            part1by1(r0) << 1 | part1by1(self.ring_step(c0, c1))
        } else {
            part1by1(self.ring_step(r0, r1)) << 1 | part1by1(c0)
        }
    }

    fn distance(&self, from: usize, to: usize) -> usize {
        let s = self.side;
        let (r0, c0) = (compact1by1(from >> 1), compact1by1(from));
        let (r1, c1) = (compact1by1(to >> 1), compact1by1(to));
        let ring = |a: usize, b: usize| {
            let d = (b + s - a) % s;
            d.min(s - d)
        };
        ring(r0, r1) + ring(c0, c1)
    }

    fn name(&self) -> String {
        format!("torus2d({}x{})", self.side, self.side)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_coords_roundtrip() {
        let m = Mesh2D::new(64);
        for i in 0..64 {
            let (r, c) = m.coords(i);
            assert!(r < 8 && c < 8);
            assert_eq!(m.id(r, c), i);
        }
    }

    #[test]
    fn mesh_clusters_are_submeshes() {
        // The top 16-processor cluster of a 64-mesh is a 4x4 corner.
        let m = Mesh2D::new(64);
        for i in 0..16 {
            let (r, c) = m.coords(i);
            assert!(r < 4 && c < 4, "proc {i} at ({r},{c})");
        }
    }

    #[test]
    fn mesh_routing_reaches_destination() {
        let m = Mesh2D::new(64);
        for from in [0usize, 17, 63] {
            for to in [5usize, 42, 0] {
                if from == to {
                    continue;
                }
                let mut cur = from;
                let mut hops = 0;
                while cur != to {
                    cur = m.next_hop(cur, to);
                    hops += 1;
                    assert!(hops <= 14, "routing loop {from}->{to}");
                }
                assert_eq!(hops, m.distance(from, to));
            }
        }
    }

    #[test]
    fn hypercube_routing_follows_dimensions() {
        let h = Hypercube::new(32);
        assert_eq!(h.distance(0, 31), 5);
        let mut cur = 0;
        while cur != 31 {
            let next = h.next_hop(cur, 31);
            assert_eq!((cur ^ next).count_ones(), 1);
            cur = next;
        }
    }

    #[test]
    fn array_routing_is_linear() {
        let a = LinearArray::new(16);
        assert_eq!(a.distance(0, 15), 15);
        assert_eq!(a.next_hop(3, 10), 4);
        assert_eq!(a.next_hop(10, 3), 9);
    }

    #[test]
    fn torus_wraps_around_the_short_way() {
        let t = Torus2D::new(64);
        // Opposite corners of an 8x8 torus wrap in both rings: 1 + 1 hops.
        let (a, b) = (t.p() - 1, 0usize);
        assert_eq!(t.distance(a, b), 2);
        // Mid-ring pairs take the 4 + 4 route, and routing delivers in
        // exactly `distance` hops.
        let (a, b) = (t.id_of(0, 0), t.id_of(4, 4));
        assert_eq!(t.distance(a, b), 8);
        let mut cur = a;
        let mut hops = 0;
        while cur != b {
            cur = t.next_hop(cur, b);
            hops += 1;
            assert!(hops <= 8, "torus routing loop");
        }
        assert_eq!(hops, 8);
    }

    #[test]
    fn torus_beats_mesh_on_wrap_heavy_relations() {
        use crate::router::route_h_relation;
        let mesh = Mesh2D::new(64);
        let torus = Torus2D::new(64);
        // Bit-complement pairs: corner-to-corner — the torus halves the paths.
        let msgs: Vec<(usize, usize)> = (0..64).map(|s| (s, 63 - s)).collect();
        assert!(route_h_relation(&torus, &msgs) <= route_h_relation(&mesh, &msgs));
    }
}
