//! Fitting D-BSP parameters from routed h-relations, and evaluating traces
//! against the simulated network (experiment E14).

use crate::router::route_h_relation;
use crate::topology::Topology;
use nob_core::metrics::CommTrace;
use nob_core::model::DbspMachine;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// The measured calibration of one topology.
#[derive(Debug, Clone)]
pub struct FitReport {
    /// The fitted machine (measured `g_i`, `ℓ_i` per cluster level).
    pub machine: DbspMachine,
    /// Raw `(level, h, cycles)` samples behind the fit.
    pub samples: Vec<(u32, u64, u64)>,
}

/// Generates an exact h-relation inside the cluster `[0, q)`: `h` random
/// permutations, so every node sends and receives exactly `h` messages.
fn random_h_relation(q: usize, h: u64, rng: &mut StdRng) -> Vec<(usize, usize)> {
    let mut msgs = Vec::with_capacity(q * h as usize);
    for _ in 0..h {
        let mut perm: Vec<usize> = (0..q).collect();
        perm.shuffle(rng);
        for (s, &d) in perm.iter().enumerate() {
            msgs.push((s, d));
        }
    }
    msgs
}

/// Measures per-cluster-level `(g_i, ℓ_i)` by routing random h-relations
/// confined to the leading i-cluster and least-squares fitting
/// `T ≈ g·h + ℓ` over `h ∈ {1, 2, 4, 8}`.
pub fn fit_dbsp<T: Topology>(topo: &T, seed: u64) -> FitReport {
    let p = topo.p();
    let log_p = p.trailing_zeros().max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Vec::new();
    let mut ell = Vec::new();
    let mut samples = Vec::new();
    for i in 0..log_p {
        let q = p >> i;
        if q < 2 {
            g.push(1.0);
            ell.push(1.0);
            continue;
        }
        let hs = [1u64, 2, 4, 8];
        let mut pts = Vec::new();
        for &h in &hs {
            // Average over a few relations to stabilize the fit.
            let mut total = 0u64;
            let reps = 3;
            for _ in 0..reps {
                total += route_h_relation(topo, &random_h_relation(q, h, &mut rng));
            }
            let t = total / reps;
            samples.push((i, h, t));
            pts.push((h as f64, t as f64));
        }
        // Least squares T = g·h + ℓ.
        let n = pts.len() as f64;
        let sx: f64 = pts.iter().map(|(x, _)| x).sum();
        let sy: f64 = pts.iter().map(|(_, y)| y).sum();
        let sxx: f64 = pts.iter().map(|(x, _)| x * x).sum();
        let sxy: f64 = pts.iter().map(|(x, y)| x * y).sum();
        let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
        let intercept = (sy - slope * sx) / n;
        g.push(slope.max(0.01));
        ell.push(intercept.max(1.0));
    }
    // Enforce the monotone shape Thm 3.4 assumes (measurement noise can
    // produce tiny inversions at the innermost levels).
    for i in 1..g.len() {
        g[i] = g[i].min(g[i - 1]);
    }
    let mut ell_fixed = ell.clone();
    let mut prev_ratio = ell_fixed[0] / g[0];
    for i in 1..ell_fixed.len() {
        if ell_fixed[i] / g[i] > prev_ratio {
            ell_fixed[i] = g[i] * prev_ratio;
        }
        prev_ratio = ell_fixed[i] / g[i];
    }
    let machine = DbspMachine::new(p, g, ell_fixed)
        .expect("fitted parameters are valid")
        .named(format!("fitted-{}", topo.name()));
    FitReport { machine, samples }
}

/// Routes every superstep of a recorded message log (at VP granularity,
/// folded onto the topology's processors) and returns the total cycle count —
/// the "ground truth" the D-BSP prediction is compared against in E14.
pub fn simulate_trace<T: Topology>(topo: &T, trace: &CommTrace, log: &[Vec<(u32, u32)>]) -> u64 {
    let p = topo.p();
    let log_v = trace.log_v;
    let log_p = p.trailing_zeros();
    assert!(p <= trace.v());
    let mut total = 0u64;
    for msgs in log {
        let folded: Vec<(usize, usize)> = msgs
            .iter()
            .map(|&(s, d)| ((s as usize) >> (log_v - log_p), (d as usize) >> (log_v - log_p)))
            .filter(|(s, d)| s != d)
            .collect();
        // A superstep costs its routing time plus one barrier sweep
        // (diameter-ish: we charge the fitted ℓ of the full machine via the
        // caller; here we count pure routing).
        total += route_h_relation(topo, &folded);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{Hypercube, Mesh2D};

    #[test]
    fn mesh_bandwidth_scales_like_sqrt_cluster() {
        let m = Mesh2D::new(64);
        let fit = fit_dbsp(&m, 42);
        let g = &fit.machine.g;
        // g_0 (64-node cluster) should exceed g_4 (4-node cluster) by ~√16 = 4
        // (generously bracketed: store-and-forward constants are loose).
        let ratio = g[0] / g[4];
        assert!(ratio > 1.5 && ratio < 12.0, "g = {g:?}");
        assert!(fit.machine.is_monotone());
    }

    #[test]
    fn hypercube_bandwidth_is_flat() {
        let h = Hypercube::new(64);
        let fit = fit_dbsp(&h, 7);
        let g = &fit.machine.g;
        let ratio = g[0] / g[5].max(0.01);
        assert!(ratio < 4.0, "hypercube g should be near-flat: {g:?}");
    }

    #[test]
    fn fitted_machines_satisfy_thm_3_4_assumptions() {
        for p in [16usize, 64] {
            let m = Mesh2D::new(p);
            assert!(fit_dbsp(&m, 1).machine.is_monotone());
            let h = Hypercube::new(p);
            assert!(fit_dbsp(&h, 1).machine.is_monotone());
        }
    }
}
