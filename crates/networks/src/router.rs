//! Cycle-accurate store-and-forward routing of h-relations.
//!
//! One message per directed link per cycle; contention resolved
//! deterministically (lowest message id first). This is the simple
//! store-and-forward model under which the classical
//! `T(h-relation on q-node d-array) = Θ(h·q^{1/d} + q^{1/d})` bounds hold —
//! the bounds the D-BSP presets encode.

use crate::topology::Topology;
use std::collections::HashMap;

/// Routes the message multiset `msgs` (src, dst pairs) to completion and
/// returns the makespan in cycles. Messages with `src == dst` are free.
pub fn route_h_relation<T: Topology>(topo: &T, msgs: &[(usize, usize)]) -> u64 {
    #[derive(Debug)]
    struct Flight {
        at: usize,
        dst: usize,
    }
    let mut flights: Vec<Flight> = msgs
        .iter()
        .filter(|(s, d)| s != d)
        .map(|&(s, d)| Flight { at: s, dst: d })
        .collect();
    let mut cycles = 0u64;
    let mut live: Vec<usize> = (0..flights.len()).collect();
    while !live.is_empty() {
        cycles += 1;
        // One winner per directed link; deterministic by message index.
        let mut links: HashMap<(usize, usize), usize> = HashMap::new();
        for &id in &live {
            let hop = topo.next_hop(flights[id].at, flights[id].dst);
            links.entry((flights[id].at, hop)).or_insert(id);
        }
        for (&(_, hop), &id) in &links {
            flights[id].at = hop;
        }
        live.retain(|&id| flights[id].at != flights[id].dst);
        assert!(cycles < 1_000_000, "routing did not converge");
    }
    cycles
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{Hypercube, Mesh2D};

    #[test]
    fn single_message_takes_distance_cycles() {
        let m = Mesh2D::new(64);
        let t = route_h_relation(&m, &[(0, 63)]);
        assert_eq!(t, m.distance(0, 63) as u64);
        let h = Hypercube::new(64);
        assert_eq!(route_h_relation(&h, &[(0, 63)]), 6);
    }

    #[test]
    fn empty_and_local_relations_are_free() {
        let m = Mesh2D::new(16);
        assert_eq!(route_h_relation(&m, &[]), 0);
        assert_eq!(route_h_relation(&m, &[(3, 3), (7, 7)]), 0);
    }

    #[test]
    fn contention_serializes_on_shared_links() {
        // Many messages from one source through one outgoing link.
        let m = Mesh2D::new(16);
        let msgs: Vec<(usize, usize)> = (0..8).map(|_| (0, 3)).collect();
        let t = route_h_relation(&m, &msgs);
        // 8 messages over a distance-2+ path with a shared first link: at
        // least 8 cycles for the link plus pipeline drain.
        assert!(t >= 9, "t = {t}");
    }

    #[test]
    fn permutation_on_hypercube_is_fast() {
        let h = Hypercube::new(64);
        let msgs: Vec<(usize, usize)> = (0..64).map(|s| (s, s ^ 63)).collect();
        let t = route_h_relation(&h, &msgs);
        // Bit-complement permutation: e-cube routes without conflicts.
        assert!(t <= 12, "t = {t}");
    }
}
