//! # nob-networks — point-to-point network simulators
//!
//! The execution machine model of the paper is D-BSP because, per Bilardi,
//! Pietracaprina and Pucci (Euro-Par'99), a logarithmic number of per-cluster
//! bandwidth/latency parameters describes a large class of point-to-point
//! networks reasonably well. This crate grounds that premise for the
//! repository's machine presets: it simulates store-and-forward packet
//! routing on actual 2D-mesh and hypercube topologies, measures the delivery
//! time of h-relations confined to nested clusters, and fits per-cluster
//! `(g_i, ℓ_i)` pairs that can be compared against
//! [`nob_core::machines::mesh2d`] / [`nob_core::machines::hypercube`] and
//! used to evaluate traces (experiment E14).
//!
//! Processor indices use the same nested-cluster numbering as D-BSP: for the
//! mesh, processor `i` sits at the Morton position of `i`, so an `i`-cluster
//! is an aligned submesh; for the hypercube, clusters are subcubes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fit;
pub mod router;
pub mod topology;

pub use fit::{fit_dbsp, simulate_trace, FitReport};
pub use router::route_h_relation;
pub use topology::{Hypercube, LinearArray, Mesh2D, Topology, Torus2D};
