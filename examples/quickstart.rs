//! Quickstart: the three-model workflow of the network-oblivious framework.
//!
//! 1. Write an algorithm for the *specification model* `M(v(n))` — no machine
//!    parameters, just labelled supersteps.
//! 2. Analyze it on the *evaluation model* `M(p, σ)` — communication
//!    complexity `H(n, p, σ)`.
//! 3. Run it on the *execution machine model* D-BSP(p, g, ℓ) — communication
//!    time `D(n, p, g, ℓ)` on concrete machine presets.
//!
//! Run with: `cargo run --example quickstart`

use network_oblivious::algos::primitives::{CombineFn, TreeScan};
use network_oblivious::core::machines;
use network_oblivious::machine::{execute, execute_folded, RunOptions};

fn add(a: &u64, b: &u64) -> u64 {
    a + b
}

fn main() {
    // --- 1. A network-oblivious algorithm: prefix sums on M(n) -----------
    let n = 1024usize;
    let input: Vec<u64> = (1..=n as u64).collect();
    let scan = TreeScan { op: add as CombineFn<u64> };

    let (prefix, trace) = execute(&scan, n, &input[..], &RunOptions::default()).unwrap();
    assert_eq!(prefix[n - 1], (n as u64) * (n as u64 + 1) / 2);
    println!("prefix sums over {n} virtual processors: last = {}", prefix[n - 1]);
    println!(
        "trace: {} supersteps, {} messages, max per-VP degree {}",
        trace.superstep_count(),
        trace.total_messages(),
        trace.max_degree()
    );

    // --- 2. Evaluate the SAME algorithm on M(p, σ) for many machines -----
    println!("\ncommunication complexity H(n, p, sigma) of the folding (Eq. 1):");
    for p in [4usize, 16, 64, 256] {
        for sigma in [0.0, 8.0] {
            println!("  H({n}, {p:>3}, {sigma:>3}) = {}", trace.comm_complexity(p, sigma));
        }
    }

    // --- 3. Execute on D-BSP machines (Eq. 2) ----------------------------
    println!("\ncommunication time D(n, p, g, l) on machine presets:");
    for m in machines::standard_suite(64) {
        println!("  {:24} D = {}", m.name, trace.comm_time(&m));
    }

    // --- Folding really runs: same outputs on 16 processors --------------
    let (folded, folded_trace) =
        execute_folded(&scan, n, &input[..], 16, &RunOptions::default()).unwrap();
    assert_eq!(folded, prefix);
    assert_eq!(folded_trace.fold(16), trace.fold(16));
    println!("\nfolding onto p = 16 processors reproduces outputs and metrics exactly.");
}
