//! 2D heat diffusion with the (n,2)-stencil octahedron/tetrahedron algorithm
//! (Section 4.4.2) on M(n²): a hot corner spreading across a plate.
//!
//! Run with: `cargo run --example heat_plate`

use network_oblivious::algos::stencil2::{
    stencil2_reference, NaiveStencil2, OctaStencil, Stencil2Op,
};
use network_oblivious::core::machines;
use network_oblivious::machine::{execute, RunOptions};

/// Nine-point averaging rule (missing neighbours drop out at the borders).
#[derive(Debug, Clone, Copy, Default)]
struct Heat2;

impl Stencil2Op for Heat2 {
    type V = f64;
    fn apply(neigh: &[[Option<&f64>; 3]; 3]) -> f64 {
        let mut sum = 0.0;
        let mut count = 0.0;
        for row in neigh {
            for v in row.iter().flatten() {
                sum += **v;
                count += 1.0;
            }
        }
        sum / count
    }
}

fn main() {
    let n = 16usize;
    let input: Vec<f64> = (0..n * n)
        .map(|k| {
            let (x, y) = (k / n, k % n);
            if x < 3 && y < 3 {
                100.0
            } else {
                0.0
            }
        })
        .collect();

    let (plate, t_octa) =
        execute(&OctaStencil::<Heat2>::default(), n, &input[..], &RunOptions::default()).unwrap();
    let reference = stencil2_reference::<Heat2>(&input, n);
    for (a, b) in plate.iter().zip(&reference) {
        assert!((a - b).abs() < 1e-9);
    }
    let (_, t_naive) =
        execute(&NaiveStencil2::<Heat2>::default(), n, &input[..], &RunOptions::default())
            .unwrap();

    println!("plate after {n} steps (temperature, one char per cell):");
    let max = plate.iter().cloned().fold(1e-12f64, f64::max);
    for x in 0..n {
        let row: String = (0..n)
            .map(|y| {
                let lvl = (plate[x * n + y] / max * 9.0).round() as u32;
                char::from_digit(lvl, 10).unwrap_or('9')
            })
            .collect();
        println!("  {row}");
    }

    println!("\ncosts on machine presets (v = n² = {}):", n * n);
    println!("{:<24} {:>12} {:>12}", "machine", "D_octa", "D_naive");
    for m in machines::standard_suite(16) {
        println!(
            "{:<24} {:>12.0} {:>12.0}",
            m.name,
            t_octa.comm_time(&m),
            t_naive.comm_time(&m)
        );
    }
}
