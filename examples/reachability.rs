//! Graph reachability (transitive closure) with Boolean matrix powers — the
//! network-oblivious MM algorithm over the (∨, ∧) semiring.
//!
//! Kerr's semiring setting (Section 4.1) means the same oblivious program
//! computes numeric products, shortest paths and reachability; only the
//! semiring changes. Here: which airports can reach which through a sparse
//! route network?
//!
//! Run with: `cargo run --example reachability`

use network_oblivious::algos::mm::standard::RecursiveMm;
use network_oblivious::algos::mm::MmInput;
use network_oblivious::algos::semiring::{BoolOrAnd, Matrix, Semiring};
use network_oblivious::machine::{execute, RunOptions};

fn main() {
    // 64 airports; a sparse directed route map (two interleaved cycles plus
    // a hub) — n = 4096 matrix entries on M(4096).
    let v = 64usize;
    let n = v * v;
    let mut adj = Matrix::from_fn(v, |i, j| {
        BoolOrAnd(
            i == j
                || (i + 3) % v == j         // short hops
                || (i % 8 == 0 && j == 0)   // spokes into the hub
                || (i == 0 && j % 16 == 1), // hub fans out
        )
    });

    // Reference closure by BFS from every node.
    let mut reach = vec![vec![false; v]; v];
    for (s, row) in reach.iter_mut().enumerate() {
        let mut stack = vec![s];
        while let Some(u) = stack.pop() {
            if row[u] {
                continue;
            }
            row[u] = true;
            for (w, seen) in row.iter().enumerate() {
                if adj.get(u, w).0 && !seen {
                    stack.push(w);
                }
            }
        }
    }

    // Repeated Boolean squaring on the oblivious MM.
    let alg = RecursiveMm::<BoolOrAnd>::default();
    let rounds = (v as f64).log2().ceil() as usize;
    let mut total_messages = 0u64;
    for _ in 0..rounds {
        let input = MmInput::new(adj.clone(), adj.clone());
        let (sq, trace) = execute(&alg, n, &input, &RunOptions::default()).unwrap();
        adj = sq;
        total_messages += trace.total_messages();
    }

    for (s, row) in reach.iter().enumerate() {
        for (t, &want) in row.iter().enumerate() {
            assert_eq!(adj.get(s, t).0, want, "closure mismatch at ({s},{t})");
        }
    }
    let reachable: usize = (0..v).map(|s| (0..v).filter(|&t| adj.get(s, t).0).count()).sum();
    println!("transitive closure of {v} airports verified against BFS.");
    println!("{reachable} of {} pairs are connected.", v * v);
    println!("{rounds} oblivious Boolean squarings, {total_messages} messages total.");
    let _ = BoolOrAnd::zero();
}
