//! All-pairs shortest paths by repeated min-plus matrix squaring — the
//! network-oblivious n-MM algorithm over the tropical semiring.
//!
//! The paper's MM algorithm uses only semiring operations (Kerr's setting),
//! so it applies verbatim to (min, +): squaring the weighted adjacency
//! matrix ⌈log V⌉ times yields all shortest-path distances. Each squaring
//! runs on M(n) obliviously; we report the accumulated communication
//! metrics and verify against Floyd–Warshall.
//!
//! Run with: `cargo run --example apsp_tropical`

use network_oblivious::algos::mm::standard::RecursiveMm;
use network_oblivious::algos::mm::MmInput;
use network_oblivious::algos::semiring::{Matrix, MinPlus, Semiring};
use network_oblivious::core::machines;
use network_oblivious::machine::{execute, RunOptions};

fn main() {
    // A directed ring with chords, 64 vertices -> n = 4096 matrix entries.
    let v = 64usize;
    let n = v * v;
    let mut adj = Matrix::from_fn(v, |i, j| {
        if i == j {
            MinPlus::one()
        } else if (i + 1) % v == j {
            MinPlus(1.0)
        } else if (i + 7) % v == j {
            MinPlus(2.5)
        } else {
            MinPlus::zero() // +inf
        }
    });

    // Floyd–Warshall reference.
    let mut reference = adj.clone();
    for k in 0..v {
        for i in 0..v {
            for j in 0..v {
                let via = reference.get(i, k).mul(reference.get(k, j));
                let best = reference.get(i, j).add(&via);
                reference.set(i, j, best);
            }
        }
    }

    let alg = RecursiveMm::<MinPlus>::default();
    let mut total_h_p64 = 0.0;
    let mut total_d_mesh = 0.0;
    let mesh = machines::mesh2d(64);
    let rounds = (v as f64).log2().ceil() as usize;
    for round in 0..rounds {
        let input = MmInput::new(adj.clone(), adj.clone());
        let (sq, trace) = execute(&alg, n, &input, &RunOptions::default()).unwrap();
        adj = sq;
        total_h_p64 += trace.comm_complexity(64, 1.0);
        total_d_mesh += trace.comm_time(&mesh);
        println!(
            "squaring {}: H(n,64,1) = {:.0}, D on mesh2d(64) = {:.0}",
            round + 1,
            trace.comm_complexity(64, 1.0),
            trace.comm_time(&mesh)
        );
    }

    assert!(adj.close_to(&reference), "APSP result mismatch");
    println!("\nAPSP over {v} vertices verified against Floyd-Warshall.");
    println!("total: H = {total_h_p64:.0} on M(64, 1); D = {total_d_mesh:.0} on the 64-node mesh.");
    println!("sample distance 0 -> 32: {:?}", adj.get(0, 32));
}
