//! Spectral analysis with the network-oblivious FFT: find the dominant
//! periodicities of a noisy signal, then compare what the same computation
//! would cost on different machines — without changing a line of the
//! algorithm.
//!
//! Run with: `cargo run --example spectrum`

use network_oblivious::algos::fft::{BinaryExchangeFft, Complex, RecursiveFft};
use network_oblivious::core::machines;
use network_oblivious::machine::{execute, RunOptions};

fn main() {
    let n = 4096usize;
    // Two tones + deterministic "noise".
    let xs: Vec<Complex> = (0..n)
        .map(|t| {
            let th = 2.0 * std::f64::consts::PI * t as f64 / n as f64;
            let noise = ((t as u64).wrapping_mul(0x9e37_79b9) % 1000) as f64 / 5000.0;
            Complex::new((73.0 * th).cos() + 0.6 * (220.0 * th).cos() + noise, 0.0)
        })
        .collect();

    // Dummies off for the cost comparison: the baseline sends none either.
    let (spectrum, trace) =
        execute(&RecursiveFft::new(false), n, &xs[..], &RunOptions::default()).unwrap();

    // Peak picking over the first half (real signal).
    let mut mags: Vec<(usize, f64)> =
        spectrum.iter().take(n / 2).enumerate().map(|(k, c)| (k, c.norm_sq().sqrt())).collect();
    mags.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("dominant bins: {:?}", &mags[..4].iter().map(|(k, _)| *k).collect::<Vec<_>>());
    assert!(mags[..4].iter().any(|(k, _)| *k == 73));
    assert!(mags[..4].iter().any(|(k, _)| *k == 220));

    // The oblivious algorithm vs the flat baseline, across machines.
    let (_, t_bin) = execute(&BinaryExchangeFft, n, &xs[..], &RunOptions::default()).unwrap();
    println!("\n{:<24} {:>12} {:>12} {:>8}", "machine", "D_recursive", "D_binex", "ratio");
    for m in machines::standard_suite(256) {
        let dr = trace.comm_time(&m);
        let db = t_bin.comm_time(&m);
        println!("{:<24} {:>12.0} {:>12.0} {:>8.2}", m.name, dr, db, db / dr);
    }
    println!("\nsame program, every machine — the oblivious recursion wins wherever the");
    println!("hierarchy matters (ratio > 1); at p close to n the one-level baseline's");
    println!("log p supersteps match the oblivious log n/log(n/p) and the gap closes.");
}
