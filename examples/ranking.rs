//! Distributed ranking with recursive Columnsort (Section 4.3): sort
//! composite records by key on M(n), one record per virtual processor, and
//! read off each record's rank from its final position.
//!
//! Run with: `cargo run --example ranking`

use network_oblivious::algos::sort::{columnsort_seq, BitonicSort, ColumnSort};
use network_oblivious::core::machines;
use network_oblivious::machine::{execute, RunOptions};

fn main() {
    let n = 4096usize;
    // Records: (score, id) — sorted by score, ties by id.
    let mut rng = {
        let mut state = 0xdead_beefu64;
        move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        }
    };
    let records: Vec<(u64, u64)> = (0..n as u64).map(|id| (rng() % 100_000, id)).collect();

    let (ranked, t_col) = execute(
        &ColumnSort::<(u64, u64)>::default(),
        n,
        &records[..],
        &RunOptions::default(),
    )
    .unwrap();

    // Verify against the sequential reference and std sort.
    let mut seq = records.clone();
    columnsort_seq(&mut seq);
    assert_eq!(ranked, seq);
    let mut want = records.clone();
    want.sort();
    assert_eq!(ranked, want);

    println!("top-5 records (rank, score, id):");
    for (rank, (score, id)) in ranked.iter().take(5).enumerate() {
        println!("  #{rank}: score {score}, id {id}");
    }

    let (_, t_bit) = execute(
        &BitonicSort::<(u64, u64)>::default(),
        n,
        &records[..],
        &RunOptions::default(),
    )
    .unwrap();
    println!("\ncommunication on a 64-node mesh vs the bitonic baseline:");
    let mesh = machines::mesh2d(64);
    println!("  columnsort D = {:.0}", t_col.comm_time(&mesh));
    println!("  bitonic    D = {:.0}", t_bit.comm_time(&mesh));
    println!("(bitonic's constants win at this n; the schedule-level crossover");
    println!(" sits at n = 2^14 — see `cargo run -p nob-bench --bin exp_sort`.)");
}
