//! 1D heat diffusion with the diamond-DAG stencil algorithm (Section 4.4.1):
//! a hot spot relaxing over an insulated rod, computed obliviously, compared
//! against naive time-stepping on latency-bound machines.
//!
//! Run with: `cargo run --example heat_diffusion`

use network_oblivious::algos::stencil::{DiamondStencil, HeatOp, NaiveStencil, StencilOp};
use network_oblivious::core::machines;
use network_oblivious::machine::{execute, RunOptions};

fn main() {
    let n = 256usize;
    // A hot spot in the middle of a cold rod.
    let input: Vec<f64> = (0..n).map(|x| if (120..136).contains(&x) { 100.0 } else { 0.0 }).collect();

    let (heat, t_diamond) =
        execute(&DiamondStencil::<HeatOp>::default(), n, &input[..], &RunOptions::default())
            .unwrap();
    let (heat_naive, t_naive) =
        execute(&NaiveStencil::<HeatOp>::default(), n, &input[..], &RunOptions::default())
            .unwrap();

    // Same DAG, same physics.
    for (a, b) in heat.iter().zip(&heat_naive) {
        assert!((a - b).abs() < 1e-9);
    }
    let reference = network_oblivious::algos::stencil::stencil_reference::<HeatOp>(&input);
    for (a, b) in heat.iter().zip(&reference) {
        assert!((a - b).abs() < 1e-9);
    }

    println!("temperature profile after {n} steps (ASCII, every 8th cell):");
    let max = heat.iter().cloned().fold(0.0f64, f64::max).max(1e-9);
    for x in (0..n).step_by(8) {
        let bars = (heat[x] / max * 40.0) as usize;
        println!("{x:>4} | {}{:.2}", "#".repeat(bars), heat[x]);
    }

    println!("\nwho wins where (Eq. 2 on machine presets, p = 8):");
    println!("{:<24} {:>12} {:>12} {:>8}", "machine", "D_diamond", "D_naive", "naive/diamond");
    for m in machines::standard_suite(8) {
        let dd = t_diamond.comm_time(&m);
        let dn = t_naive.comm_time(&m);
        println!("{:<24} {:>12.0} {:>12.0} {:>8.2}", m.name, dd, dn, dn / dd);
    }
    println!("\nnaive wins on bandwidth-bound machines; the diamond decomposition");
    println!("wins when per-superstep latency dominates (e.g. the linear array).");
    let _ = HeatOp::apply(None, Some(&1.0), None);
}
