#!/usr/bin/env bash
# Compares two bench runs and fails on throughput regressions. Understands
# both schemas: `BENCH_engine.json` (rows keyed (v, program, threads),
# rate = arena/plan msgs/sec) and `BENCH_server.json` (workloads keyed
# (name, width), rate = jobs/sec). Both files must be the same kind.
#
# Usage: scripts/bench_compare.sh OLD.json NEW.json [threshold_pct]
#
# Rows are joined on (v, program, threads) — `threads` defaults to 1 for
# pre-scaling baselines (PR-1 rows carry no threads field, and their arena
# numbers are single-core, directly comparable to the new serial path).
# A row regresses when NEW arena_msgs_per_sec < OLD * (1 - threshold/100);
# the default threshold is 10%. Rows present in only one file are reported
# but do not fail the comparison — scaling columns grow over time, and
# single-CPU containers omit the threads > 1 rows entirely (the bench
# skips pure coordination-overhead measurements by default).
#
# When both files carry the communication-plan column (plan_msgs_per_sec,
# PR-3+), plans-enabled rows are compared too, keyed (v/program/threads/plan).
# arena_msgs_per_sec always means the plans-disabled dynamic path, so old
# baselines stay directly comparable.
#
# When both files carry the per-row memory column (rss_delta_kb, PR-5+ —
# the row's own VmHWM growth, unlike the cumulative peak_rss_kb), matched
# rows' deltas are reported too (informational: memory use is
# environment-sensitive, so growth is printed, not failed on).
#
# When both files carry telemetry columns (PR-9+: engine rows attach
# per-site `phase_nanos` from an armed shadow run; server workloads
# carry the queue_p99_us/service_p99_us latency split), matched keys'
# phase-time shifts are reported the same way — informational only,
# since absolute phase durations are even noisier than rates.
set -euo pipefail

if [ $# -lt 2 ] || [ $# -gt 3 ]; then
    echo "usage: $0 OLD.json NEW.json [threshold_pct]" >&2
    exit 2
fi
old_file=$1
new_file=$2
threshold=${3:-10}

for f in "$old_file" "$new_file"; do
    [ -r "$f" ] || { echo "bench_compare: cannot read $f" >&2; exit 2; }
done
command -v jq >/dev/null || { echo "bench_compare: jq is required" >&2; exit 2; }

# Schema kind: a `workloads` array marks a job-server file, a `rows` array
# an engine-throughput file.
kind_of() {
    jq -r 'if .workloads then "server" elif .rows then "engine" else "unknown" end' "$1"
}
kind=$(kind_of "$old_file")
kind_new=$(kind_of "$new_file")
if [ "$kind" != "$kind_new" ] || [ "$kind" = unknown ]; then
    echo "bench_compare: cannot compare a '$kind' file against a '$kind_new' file" >&2
    exit 2
fi
rate_label="msgs/sec"
[ "$kind" = server ] && rate_label="jobs/sec"

# Engine: (v, program, threads[, plan]) -> msgs/sec, one row per line.
# Server: (workload name, width) -> jobs/sec.
extract() {
    if [ "$kind" = server ]; then
        jq -r '.workloads[] | "\(.name)/w\(.width) \(.jobs_per_sec)"' "$1"
    else
        jq -r '.rows[]
            | "\(.v)/\(.program)/\(.threads // 1) \(.arena_msgs_per_sec)",
              (select(.plan_msgs_per_sec != null)
               | "\(.v)/\(.program)/\(.threads // 1)/plan \(.plan_msgs_per_sec)")' "$1"
    fi
}

old_rows=$(extract "$old_file")
new_rows=$(extract "$new_file")

fail=0
matched=0
while read -r key old_rate; do
    new_rate=$(awk -v k="$key" '$1 == k { print $2; exit }' <<<"$new_rows")
    if [ -z "$new_rate" ]; then
        echo "bench_compare: $key only in $old_file (skipped)"
        continue
    fi
    matched=$((matched + 1))
    verdict=$(awk -v o="$old_rate" -v n="$new_rate" -v t="$threshold" 'BEGIN {
        floor = o * (1 - t / 100);
        delta = (n / o - 1) * 100;
        printf "%s %+.1f%%", (n < floor ? "REGRESSION" : "ok"), delta;
    }')
    case "$verdict" in
        REGRESSION*)
            echo "bench_compare: $key ${verdict#REGRESSION } (old $old_rate -> new $new_rate) REGRESSION"
            fail=1
            ;;
        *)
            echo "bench_compare: $key ${verdict#ok } (old $old_rate -> new $new_rate)"
            ;;
    esac
done <<<"$old_rows"

while read -r key _; do
    if ! awk -v k="$key" '$1 == k { found = 1 } END { exit !found }' <<<"$old_rows"; then
        echo "bench_compare: $key only in $new_file (skipped)"
    fi
done <<<"$new_rows"

# Per-row memory deltas (informational; requires the key in both files).
extract_mem() {
    if [ "$kind" = server ]; then
        jq -r '.workloads[] | select(.rss_delta_kb != null)
            | "\(.name)/w\(.width) \(.rss_delta_kb)"' "$1"
    else
        jq -r '.rows[] | select(.rss_delta_kb != null)
            | "\(.v)/\(.program)/\(.threads // 1) \(.rss_delta_kb)"' "$1"
    fi
}
old_mem=$(extract_mem "$old_file")
new_mem=$(extract_mem "$new_file")
if [ -n "$old_mem" ] && [ -n "$new_mem" ]; then
    while read -r key old_kb; do
        new_kb=$(awk -v k="$key" '$1 == k { print $2; exit }' <<<"$new_mem")
        [ -n "$new_kb" ] || continue
        echo "bench_compare: mem $key rss_delta ${old_kb}kB -> ${new_kb}kB"
    done <<<"$old_mem"
fi

# Phase-time deltas (informational; requires the key in both files).
# Engine keys are (v/program/threads/site) over armed-run phase_nanos;
# server keys are (name/width/column) over the queue/service split (µs).
extract_phase() {
    if [ "$kind" = server ]; then
        jq -r '.workloads[]
            | select(.queue_p99_us != null and .service_p99_us != null)
            | "\(.name)/w\(.width)/queue_p99_us \(.queue_p99_us)",
              "\(.name)/w\(.width)/service_p99_us \(.service_p99_us)"' "$1"
    else
        jq -r '.rows[] | select(.phase_nanos != null)
            | "\(.v)/\(.program)/\(.threads // 1)" as $k
            | .phase_nanos | to_entries[] | select(.value > 0)
            | "\($k)/\(.key) \(.value)"' "$1"
    fi
}
old_phase=$(extract_phase "$old_file")
new_phase=$(extract_phase "$new_file")
if [ -n "$old_phase" ] && [ -n "$new_phase" ]; then
    while read -r key old_val; do
        new_val=$(awk -v k="$key" '$1 == k { print $2; exit }' <<<"$new_phase")
        [ -n "$new_val" ] || continue
        awk -v k="$key" -v o="$old_val" -v n="$new_val" 'BEGIN {
            d = (o > 0) ? sprintf(" (%+.1f%%)", (n / o - 1) * 100) : "";
            printf "bench_compare: phase %s %s -> %s%s\n", k, o, n, d;
        }'
    done <<<"$old_phase"
fi

if [ "$matched" -eq 0 ]; then
    echo "bench_compare: no comparable rows between $old_file and $new_file" >&2
    exit 2
fi
if [ "$fail" -ne 0 ]; then
    echo "bench_compare: FAILED (> ${threshold}% ${rate_label} regression at a matched key)" >&2
    exit 1
fi
echo "bench_compare: OK ($matched rows within ${threshold}%)"
