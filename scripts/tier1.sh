#!/usr/bin/env bash
# Tier-1 verification: release build, full test suite, lint-clean workspace.
# Run from the repository root. All builds are offline (dependencies are
# in-tree shims; see crates/shims/README.md).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline
cargo clippy -q --offline --all-targets
cargo doc --no-deps -q --offline

# Hardened arithmetic: per-destination message counts feed the unsafe
# counting-sort scatters, where a silently capped count corrupts the
# prefix-sum offsets — so the engine must use checked adds (ModelError on
# overflow), never saturating ones. Any saturating_* in the engine sources
# needs an explicit `allow-saturating:` justification on the same line.
if grep -rn --include='*.rs' 'saturating_' crates/machine/src | grep -v 'allow-saturating:'; then
    echo "tier1: unjustified saturating_* arithmetic in crates/machine/src (use a checked add or an allow-saturating: comment)" >&2
    exit 1
fi

scripts/bench_smoke.sh

echo "tier1: OK"
