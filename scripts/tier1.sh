#!/usr/bin/env bash
# Tier-1 verification: release build, full test suite, lint-clean workspace.
# Run from the repository root. All builds are offline (dependencies are
# in-tree shims; see crates/shims/README.md).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline
cargo clippy -q --offline --all-targets
cargo doc --no-deps -q --offline
scripts/bench_smoke.sh

echo "tier1: OK"
