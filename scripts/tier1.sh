#!/usr/bin/env bash
# Tier-1 verification: release build, full test suite, lint-clean workspace.
# Run from the repository root. All builds are offline (dependencies are
# in-tree shims; see crates/shims/README.md).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
# Examples are real build targets (the serving-API walkthrough lives in
# one) but `cargo build` alone never compiles them — build them explicitly
# so tier-1 catches example rot.
cargo build --release --offline --examples
cargo test -q --offline
cargo clippy -q --offline --all-targets
cargo doc --no-deps -q --offline

# Hardened arithmetic: per-destination message counts feed the unsafe
# counting-sort scatters, where a silently capped count corrupts the
# prefix-sum offsets — so the engine must use checked adds (ModelError on
# overflow), never saturating ones. Any saturating_* in the engine sources
# needs an explicit `allow-saturating:` justification on the same line.
if grep -rn --include='*.rs' 'saturating_' crates/machine/src | grep -v 'allow-saturating:'; then
    echo "tier1: unjustified saturating_* arithmetic in crates/machine/src (use a checked add or an allow-saturating: comment)" >&2
    exit 1
fi

# Panic-free engine: failures must surface as structured ModelErrors (the
# chaos-hardening contract), so non-test engine code may not unwrap/expect
# without an explicit `allow-panic:` justification on the line or in a
# comment within the three lines above it. Test modules are exempt: the
# scan stops at each file's first `#[cfg(test)]`.
panics=$(
    for f in $(find crates/machine/src -name '*.rs'); do
        awk '
            /#\[cfg\(test\)\]/ { exit }
            /allow-panic:/ { ok = FNR }
            /\.unwrap\(\)|\.expect\(/ {
                if (!ok || FNR - ok > 3) print FILENAME ":" FNR ":" $0
            }
        ' "$f"
    done
)
if [ -n "$panics" ]; then
    echo "$panics"
    echo "tier1: unjustified unwrap()/expect( in crates/machine/src non-test code (return a ModelError or add an allow-panic: comment)" >&2
    exit 1
fi

# Chaos suite: deterministic fault injection over every instrumented
# failpoint × flavor × shard width; bounded so a hang (the exact failure
# class the suite guards against) fails tier-1 instead of wedging it.
timeout 60 cargo test -q --offline -p nob-machine --test chaos

scripts/bench_smoke.sh

echo "tier1: OK"
