#!/usr/bin/env bash
# Tier-1 verification: release build, full test suite, lint-clean workspace.
# Run from the repository root. All builds are offline (dependencies are
# in-tree shims; see crates/shims/README.md).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
# Examples are real build targets (the serving-API walkthrough lives in
# one) but `cargo build` alone never compiles them — build them explicitly
# so tier-1 catches example rot.
cargo build --release --offline --examples
cargo test -q --offline
cargo clippy -q --offline --all-targets -- -D warnings
cargo doc --no-deps -q --offline

# Engine-invariant lint (nob-lint): panic-freedom, checked arithmetic,
# unsafe hygiene + inventory baseline, SeqCst justification, telemetry/
# failpoint site coverage, and the zero-cost Instant::now gate — the
# comment/string/attribute-aware replacement for the old awk/grep gates
# (which missed code after a file's first #[cfg(test)] and fired inside
# strings). Rules, escape hatches, and the baseline workflow:
# crates/lint/README.md. The JSON report is deterministic and checked in
# next to the bench JSONs.
cargo run --release --offline -q -p nob-lint -- --json LINT_report.json

# Chaos suite: deterministic fault injection over every instrumented
# failpoint × flavor × shard width; bounded so a hang (the exact failure
# class the suite guards against) fails tier-1 instead of wedging it.
timeout 60 cargo test -q --offline -p nob-machine --test chaos

scripts/bench_smoke.sh

echo "tier1: OK"
