#!/usr/bin/env bash
# Communication-plan smoke check: runs the engine-throughput experiment's
# `--smoke` mode — one small size (v = 2^10), FFT + Columnsort plus the
# dynamic butterfly, plans enabled vs disabled, fusion on vs off, and
# capture on vs off (captured plans replayed against the live dynamic
# run), all vs the reference engine, asserting bit-for-bit equality of
# states, communication trace and message log on the serial, sharded
# (4 workers — the gang, its direct cross-shard scatter and the
# zero-barrier fused pipeline run even on 1-CPU containers; correctness
# is scheduling-independent) and folded paths. Wired into
# scripts/tier1.sh so a plan/metric/capture divergence fails tier-1
# immediately instead of waiting for a full bench run. Takes a few
# seconds (release build assumed warm from tier-1).
#
# It also times the fft v = 2^10 serial row (faults disarmed — the default)
# into a one-row guard file and diffs it against the checked-in
# BENCH_engine.json baseline: the throughput tripwire proving the
# fault-injection/watchdog plumbing costs nothing when disabled. The
# threshold (percent) is deliberately loose — CI containers are noisy —
# and tunable via NOB_SMOKE_BENCH_TOL; requires jq (skipped with a notice
# when absent, like bench_compare.sh itself would fail).
set -euo pipefail
cd "$(dirname "$0")/.."

guard="$(mktemp /tmp/BENCH_smoke.XXXXXX.json)"
trap 'rm -f "$guard"' EXIT

cargo run --release --offline -q -p nob-bench --bin exp_engine_throughput -- --smoke "$guard"

# Job-server smoke: served results (cold/warm/captured/serial-path) must be
# bit-for-bit identical to direct runs on a persistent gang, and a faulted
# job must leave the gang serviceable. Correctness only — the jobs/sec
# numbers live in BENCH_server.json via `exp_server` (diffable across runs
# with scripts/bench_compare.sh, which understands both bench schemas).
cargo run --release --offline -q -p nob-bench --bin exp_server -- --smoke

if command -v jq >/dev/null 2>&1; then
    scripts/bench_compare.sh BENCH_engine.json "$guard" "${NOB_SMOKE_BENCH_TOL:-35}"
else
    echo "bench_smoke: jq not found, skipping throughput guard comparison" >&2
fi
