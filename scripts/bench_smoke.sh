#!/usr/bin/env bash
# Communication-plan smoke check: runs the engine-throughput experiment's
# `--smoke` mode — one small size (v = 2^10), FFT + Columnsort, plans
# enabled vs disabled vs the reference engine, asserting bit-for-bit
# equality of states, communication trace and message log on the serial,
# sharded (4 workers — the gang and its direct cross-shard scatter run
# even on 1-CPU containers; correctness is scheduling-independent) and
# folded paths. Wired into scripts/tier1.sh so a plan/metric divergence
# fails tier-1 immediately instead of waiting for a full bench run. Takes
# a few seconds (release build assumed warm from tier-1).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --release --offline -q -p nob-bench --bin exp_engine_throughput -- --smoke
