#!/usr/bin/env bash
# Communication-plan smoke check: runs the engine-throughput experiment's
# `--smoke` mode — one small size (v = 2^10), FFT + Columnsort plus the
# dynamic butterfly, plans enabled vs disabled, fusion on vs off, and
# capture on vs off (captured plans replayed against the live dynamic
# run), all vs the reference engine, asserting bit-for-bit equality of
# states, communication trace and message log on the serial, sharded
# (4 workers — the gang, its direct cross-shard scatter and the
# zero-barrier fused pipeline run even on 1-CPU containers; correctness
# is scheduling-independent) and folded paths. Wired into
# scripts/tier1.sh so a plan/metric/capture divergence fails tier-1
# immediately instead of waiting for a full bench run. Takes a few
# seconds (release build assumed warm from tier-1).
#
# It also times the fft v = 2^10 serial row (faults and telemetry
# disarmed — the default) into a one-row guard file and diffs it against
# the checked-in BENCH_engine.json baseline: the throughput tripwire
# proving the fault-injection/watchdog and telemetry plumbing cost
# nothing when disabled. The threshold (percent) is deliberately loose —
# CI containers are noisy — and tunable via NOB_SMOKE_BENCH_TOL; requires
# jq (skipped with a notice when absent, like bench_compare.sh itself
# would fail).
#
# Finally, both smoke binaries emit one armed `nob-telemetry-v1` snapshot
# each (a run report covering every engine phase site, and a server
# report of JobServer lifecycle counters) which are jq-validated here:
# schema string, all 12 span sites observed with non-negative durations,
# and the lifecycle invariant jobs == cache_hits + cache_misses.
set -euo pipefail
cd "$(dirname "$0")/.."

guard="$(mktemp /tmp/BENCH_smoke.XXXXXX.json)"
run_snap="$(mktemp /tmp/nob_telemetry_run.XXXXXX.json)"
srv_snap="$(mktemp /tmp/nob_telemetry_server.XXXXXX.json)"
trap 'rm -f "$guard" "$run_snap" "$srv_snap"' EXIT

cargo run --release --offline -q -p nob-bench --bin exp_engine_throughput -- --smoke "$guard" "$run_snap"

# Job-server smoke: served results (cold/warm/captured/serial-path) must be
# bit-for-bit identical to direct runs on a persistent gang, and a faulted
# job must leave the gang serviceable. Correctness only — the jobs/sec
# numbers live in BENCH_server.json via `exp_server` (diffable across runs
# with scripts/bench_compare.sh, which understands both bench schemas).
cargo run --release --offline -q -p nob-bench --bin exp_server -- --smoke "$srv_snap"

if command -v jq >/dev/null 2>&1; then
    scripts/bench_compare.sh BENCH_engine.json "$guard" "${NOB_SMOKE_BENCH_TOL:-35}"

    # Telemetry snapshot schema checks. The run report must name every
    # phase site with a positive observation count (the smoke workload is
    # constructed to touch serial, planned, fused, dynamic and capture
    # paths); the server report's counters must satisfy the per-job
    # accounting invariant.
    jq -e '
        .schema == "nob-telemetry-v1" and .kind == "run"
        and (.sites | length) == 12
        and ([.sites[] | select(.count <= 0 or .nanos < 0)] | length) == 0
    ' "$run_snap" >/dev/null \
        || { echo "bench_smoke: run telemetry snapshot failed schema check:" >&2; cat "$run_snap" >&2; exit 1; }
    jq -e '
        .schema == "nob-telemetry-v1" and .kind == "server"
        and .jobs > 0 and .jobs == .cache_hits + .cache_misses
        and .service_nanos > 0 and .dispatch_count > 0
    ' "$srv_snap" >/dev/null \
        || { echo "bench_smoke: server telemetry snapshot failed schema check:" >&2; cat "$srv_snap" >&2; exit 1; }
    echo "bench_smoke: telemetry snapshots OK (12 run sites observed; server jobs == hits + misses)"
else
    echo "bench_smoke: jq not found, skipping throughput guard and telemetry snapshot checks" >&2
fi
