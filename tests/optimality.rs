//! Integration: the corollaries of Section 4 — the optimality theorem
//! instantiated with the σ-ranges the paper uses for each algorithm.
//!
//! Corollary 4.3 (MM):  p̄ = n, σ^m_i = 0, σ^M_i = n/((i+1)·2^{2i/3});
//! Corollary 4.6 (FFT): p̄ = n, σ^m_i = 0, σ^M_i = n/2^i;
//! Corollary 4.9 (sort): p̄ = n, σ^m_i = 0, σ^M_i = +∞.
//!
//! For each, we take the network-oblivious algorithm as A and the flat
//! baseline as the class-C competitor C, and check the Theorem 3.4
//! conclusion `D_A ≤ (1+α)/(αβ)·D_C` on every admissible preset machine.

use network_oblivious::algos::fft::{BinaryExchangeFft, RecursiveFft};
use network_oblivious::algos::mm::cannon::CannonMm;
use network_oblivious::algos::mm::standard::RecursiveMm;
use network_oblivious::algos::mm::MmInput;
use network_oblivious::algos::semiring::{Matrix, WrapU64};
use network_oblivious::algos::sort::{BitonicSort, ColumnSort};
use network_oblivious::core::machines;
use network_oblivious::core::theorem::{check_thm_3_4, lemma_3_1_holds, SigmaRanges};
use network_oblivious::core::CommTrace;
use network_oblivious::machine::{execute, RunOptions};

fn machine_suite(p_bar: usize) -> Vec<network_oblivious::core::DbspMachine> {
    [4usize, 16, 64]
        .iter()
        .filter(|&&p| p <= p_bar)
        .flat_map(|&p| machines::standard_suite(p))
        .collect()
}

fn assert_corollary(name: &str, a: &CommTrace, c: &CommTrace, ranges: SigmaRanges) {
    let p_bar = a.v();
    let rep = check_thm_3_4(a, c, p_bar, &ranges, &machine_suite(p_bar));
    assert!(
        rep.machines.iter().any(|m| m.admissible),
        "{name}: no admissible machines — corollary vacuous"
    );
    assert!(rep.all_hold(), "{name}: Thm 3.4 conclusion violated: {rep:#?}");
    assert!(rep.alpha > 0.0, "{name}: wiseness degenerate");
}

#[test]
fn corollary_4_3_matrix_multiplication() {
    let n = 4096usize;
    let s = 64;
    let mut rng = 7u64;
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    let input = MmInput::new(
        Matrix::from_fn(s, |_, _| WrapU64(next() % 100)),
        Matrix::from_fn(s, |_, _| WrapU64(next() % 100)),
    );
    let (_, a) =
        execute(&RecursiveMm::<WrapU64>::default(), n, &input, &RunOptions::default()).unwrap();
    let (_, c) =
        execute(&CannonMm::<WrapU64>::default(), n, &input, &RunOptions::default()).unwrap();
    // σ^M_i = n/((i+1)·2^{2i/3}) as in the proof of Cor 4.3.
    let log_n = n.trailing_zeros() as usize;
    let sigma_max: Vec<f64> = (0..log_n)
        .map(|i| n as f64 / ((i as f64 + 1.0) * 2f64.powf(2.0 * i as f64 / 3.0)))
        .collect();
    assert_corollary("Cor 4.3", &a, &c, SigmaRanges::zero_to(sigma_max));
    assert!(lemma_3_1_holds(&a, n));
}

#[test]
fn corollary_4_6_fft() {
    let n = 1024usize;
    let xs: Vec<_> = (0..n)
        .map(|t| {
            let th = 2.0 * std::f64::consts::PI * t as f64 / n as f64;
            network_oblivious::algos::fft::Complex::new(th.cos(), th.sin() * 0.5)
        })
        .collect();
    let (_, a) = execute(&RecursiveFft::default(), n, &xs[..], &RunOptions::default()).unwrap();
    let (_, c) = execute(&BinaryExchangeFft, n, &xs[..], &RunOptions::default()).unwrap();
    // σ^M_i = n/2^i as in the proof of Cor 4.6.
    let log_n = n.trailing_zeros() as usize;
    let sigma_max: Vec<f64> = (0..log_n).map(|i| n as f64 / 2f64.powi(i as i32)).collect();
    assert_corollary("Cor 4.6", &a, &c, SigmaRanges::zero_to(sigma_max));
    assert!(lemma_3_1_holds(&a, n));
}

#[test]
fn corollary_4_9_sorting() {
    let n = 1024usize;
    let mut rng = 3u64;
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    let keys: Vec<u64> = (0..n).map(|_| next()).collect();
    let (_, a) =
        execute(&ColumnSort::<u64>::default(), n, &keys[..], &RunOptions::default()).unwrap();
    let (_, c) =
        execute(&BitonicSort::<u64>::default(), n, &keys[..], &RunOptions::default()).unwrap();
    // σ^M_i = +∞ as in the proof of Cor 4.9.
    assert_corollary("Cor 4.9", &a, &c, SigmaRanges::unrestricted(n));
    assert!(lemma_3_1_holds(&a, n));
}

#[test]
fn theorem_conclusion_is_invariant_under_swapping_roles() {
    // Thm 3.4 holds for ANY pair in C, including with roles reversed:
    // the checker must never report a violation (a violation would mean the
    // metric pipeline broke, not the paper).
    let n = 256usize;
    let mut rng = 5u64;
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    let keys: Vec<u64> = (0..n).map(|_| next()).collect();
    let (_, a) =
        execute(&ColumnSort::<u64>::default(), n, &keys[..], &RunOptions::default()).unwrap();
    let (_, c) =
        execute(&BitonicSort::<u64>::default(), n, &keys[..], &RunOptions::default()).unwrap();
    for (x, y) in [(&a, &c), (&c, &a)] {
        let rep = check_thm_3_4(x, y, n, &SigmaRanges::unrestricted(n), &machine_suite(n));
        assert!(rep.all_hold());
    }
}
