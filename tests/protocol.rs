//! Integration: the Section-5 ascend–descend protocol applied to real
//! algorithm executions.

use network_oblivious::algos::broadcast::ObliviousBroadcast;
use network_oblivious::algos::sort::ColumnSort;
use network_oblivious::core::theorem::thm_5_3_factor;
use network_oblivious::core::{fullness, machines};
use network_oblivious::machine::protocol::ascend_descend;
use network_oblivious::machine::execute_with_log;

#[test]
fn protocol_preserves_label_structure() {
    // Rewritten supersteps of an i-superstep use labels ≥ i (the protocol
    // works inside the original cluster) and < log p.
    let n = 256usize;
    let keys: Vec<u64> = (0..n as u64).map(|k| k ^ 0x5a).collect();
    let (_, trace, log) =
        execute_with_log(&ColumnSort::<u64>::default(), n, &keys[..]).unwrap();
    for p in [4usize, 16, 64] {
        let rewritten = ascend_descend(&trace, &log, p);
        let log_p = p.trailing_zeros();
        for s in &rewritten.steps {
            assert!(s.label < log_p);
        }
        // Every original communicating superstep expands to ≥ its share.
        assert!(rewritten.superstep_count() >= trace.fold(p).s.iter().sum::<u64>() as usize);
    }
}

#[test]
fn protocol_cost_stays_within_thm_5_3() {
    // For a (γ, p)-full algorithm the rewritten execution is within
    // O((1 + 1/γ)·log²p̄) of the original optimality class. We check the
    // measured blow-up of H against that envelope (constant 8).
    let n = 256usize;
    let keys: Vec<u64> = (0..n as u64).map(|k| k.wrapping_mul(0x2545_f491)).collect();
    let (_, trace, log) =
        execute_with_log(&ColumnSort::<u64>::default(), n, &keys[..]).unwrap();
    let p = 16usize;
    let gamma = fullness::gamma_max(&trace, p).gamma.min(1.0);
    assert!(gamma > 0.0);
    let rewritten = ascend_descend(&trace, &log, p);
    for sigma in [0.0, 4.0] {
        let h_orig = trace.comm_complexity(p, sigma);
        let h_new = rewritten.comm_complexity(p, sigma);
        let lp = (p as f64).log2();
        let envelope = 8.0 * (1.0 + 1.0 / gamma) * lp * lp;
        assert!(
            h_new <= envelope * h_orig,
            "sigma={sigma}: blow-up {} exceeds Thm 5.3 envelope {envelope}",
            h_new / h_orig
        );
    }
    // And the factor function itself behaves.
    assert!(thm_5_3_factor(1.0, gamma, p) > 0.0);
}

#[test]
fn protocol_helps_unbalanced_patterns_on_hierarchical_machines() {
    // The broadcast tree is balanced (degree 1) — ascend-descend should not
    // catastrophically hurt it even on the array.
    let n = 1024usize;
    let (_, trace, log) = execute_with_log(&ObliviousBroadcast, n, &9u64).unwrap();
    let p = 32usize;
    let rewritten = ascend_descend(&trace, &log, p);
    let m = machines::linear_array(p);
    let overhead = rewritten.comm_time(&m) / trace.comm_time(&m);
    assert!(overhead < 30.0, "overhead {overhead}");
}
