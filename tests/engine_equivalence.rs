//! Workspace-level equivalence property tests for the engine on the *real*
//! Section-4 programs (not just toy broadcasts): full-granularity
//! execution, folded execution at `p ∈ {2, 4, 8}`, the persistent sharded
//! executor at several worker widths, and the preserved legacy reference
//! engine must all agree on final states and on every analytic fold of the
//! communication trace.

use network_oblivious::algos::fft::{naive_dft, BinaryExchangeFft, Complex};
use network_oblivious::algos::mm::cannon::CannonMm;
use network_oblivious::algos::mm::standard::RecursiveMm;
use network_oblivious::algos::mm::MmInput;
use network_oblivious::algos::semiring::{Matrix, WrapU64};
use network_oblivious::algos::sort::ColumnSort;
use network_oblivious::algos::stencil::{stencil_reference, DiamondStencil, WrapSumOp};
use network_oblivious::algos::stencil2::{stencil2_reference, OctaStencil, WrapSum2Op};
use network_oblivious::machine::reference::{run_folded_reference, run_reference};
use network_oblivious::machine::{run, run_folded, NobAlgorithm, RunOptions};
use proptest::prelude::*;

/// Checks the full set of equivalences for one algorithm instance:
/// full run == folded run (states + all fold metrics) == reference engine
/// == sharded executor (2 and 4 persistent workers), for every `p` in `ps`.
fn assert_engine_equivalences<A>(alg: &A, n: usize, input: &A::Input, ps: &[usize])
where
    A: NobAlgorithm,
    A::State: PartialEq + std::fmt::Debug,
{
    let states = alg.init(n, input);
    let prog = alg.build(n);
    let opts = RunOptions::default();
    let full = run(&prog, states.clone(), &opts).unwrap();
    let legacy = run_reference(&prog, states.clone(), &opts).unwrap();
    assert_eq!(full.states, legacy.states, "arena vs reference states, n = {n}");
    assert_eq!(full.trace, legacy.trace, "arena vs reference trace, n = {n}");
    // Communication plans change cost, never results: the same program with
    // plans disabled (dynamic path for every superstep) must agree bit for
    // bit — states, trace, and raw message log.
    let logged = RunOptions::with_log();
    let plan_on = run(&prog, states.clone(), &logged).unwrap();
    let plan_off =
        run(&prog, states.clone(), &RunOptions { use_plans: false, ..RunOptions::with_log() })
            .unwrap();
    assert_eq!(plan_on.states, plan_off.states, "plan-on vs plan-off states, n = {n}");
    assert_eq!(plan_on.trace, plan_off.trace, "plan-on vs plan-off trace, n = {n}");
    assert_eq!(plan_on.message_log, plan_off.message_log, "plan-on vs plan-off log, n = {n}");
    // Sharded planned execution (the direct cross-shard scatter) must agree
    // with the serial run bit for bit — states, trace and message log — at
    // every width; the dynamic lane path and the validation-off planned
    // path are cross-checked at one width to bound the suite's runtime.
    for (what, opts) in [
        ("sharded planned", RunOptions { workers: Some(2), ..RunOptions::with_log() }),
        ("sharded planned", RunOptions { workers: Some(4), ..RunOptions::with_log() }),
        ("sharded planned", RunOptions { workers: Some(8), ..RunOptions::with_log() }),
        (
            "sharded plans-off",
            RunOptions { workers: Some(4), use_plans: false, ..RunOptions::with_log() },
        ),
        (
            "sharded planned no-validate",
            RunOptions { workers: Some(4), validate: false, ..RunOptions::with_log() },
        ),
    ] {
        let w = opts.workers.unwrap();
        let sharded = run(&prog, states.clone(), &opts).unwrap();
        assert_eq!(sharded.states, plan_on.states, "{what} states at {w} workers, n = {n}");
        assert_eq!(sharded.trace, plan_on.trace, "{what} trace at {w} workers, n = {n}");
        assert_eq!(
            sharded.message_log, plan_on.message_log,
            "{what} log at {w} workers, n = {n}"
        );
    }
    for &p in ps {
        if p > prog.v() {
            continue;
        }
        let folded = run_folded(&prog, states.clone(), p, &opts).unwrap();
        assert_eq!(folded.states, full.states, "full vs folded states at p = {p}, n = {n}");
        let folded_off = run_folded(
            &prog,
            states.clone(),
            p,
            &RunOptions { use_plans: false, ..Default::default() },
        )
        .unwrap();
        assert_eq!(
            folded_off.states, folded.states,
            "plan-on vs plan-off folded states at p = {p}, n = {n}"
        );
        assert_eq!(
            folded_off.trace, folded.trace,
            "plan-on vs plan-off folded trace at p = {p}, n = {n}"
        );
        let folded_legacy = run_folded_reference(&prog, states.clone(), p, &opts).unwrap();
        assert_eq!(
            folded.trace, folded_legacy.trace,
            "arena vs reference folded trace at p = {p}, n = {n}"
        );
        // The sharded folding (shard = fold, capped by the worker budget)
        // must agree with the serial folding exactly.
        let sharded_folded = run_folded(
            &prog,
            states.clone(),
            p,
            &RunOptions { workers: Some(4), ..Default::default() },
        )
        .unwrap();
        assert_eq!(
            sharded_folded.states, folded.states,
            "sharded folded states at p = {p}, n = {n}"
        );
        assert_eq!(
            sharded_folded.trace, folded.trace,
            "sharded folded trace at p = {p}, n = {n}"
        );
        // And the sharded folding with plans disabled (lane path) matches
        // the sharded planned folding (direct cross-shard path) exactly.
        let sharded_folded_off = run_folded(
            &prog,
            states.clone(),
            p,
            &RunOptions { workers: Some(4), use_plans: false, ..Default::default() },
        )
        .unwrap();
        assert_eq!(
            sharded_folded_off.states, folded.states,
            "sharded folded plans-off states at p = {p}, n = {n}"
        );
        assert_eq!(
            sharded_folded_off.trace, folded.trace,
            "sharded folded plans-off trace at p = {p}, n = {n}"
        );
        // The executed folding must reproduce the analytic fold of the
        // full-granularity trace at every sub-granularity.
        let mut q = 2;
        while q <= p {
            assert_eq!(
                folded.trace.fold(q),
                full.trace.fold(q),
                "executed vs analytic fold metrics at p = {p}, q = {q}, n = {n}"
            );
            q *= 2;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// FFT: random signals, sizes 8..=256, folds p ∈ {2, 4, 8}.
    #[test]
    fn fft_full_folded_and_reference_agree(lg in 3u32..9, seed in any::<u64>()) {
        let n = 1usize << lg;
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 2000) as f64 / 1000.0 - 1.0
        };
        let xs: Vec<Complex> = (0..n).map(|_| Complex::new(next(), next())).collect();
        assert_engine_equivalences(&BinaryExchangeFft, n, &xs[..], &[2, 4, 8]);
        // And the algorithm still computes the DFT through the arena engine.
        let (got, _) = network_oblivious::machine::execute(
            &BinaryExchangeFft,
            n,
            &xs[..],
            &RunOptions::default(),
        )
        .unwrap();
        let want = naive_dft(&xs);
        let eps = 1e-9 * (n as f64) * 8.0;
        for (g, w) in got.iter().zip(&want) {
            prop_assert!(g.close_to(*w, eps), "{:?} vs {:?}", g, w);
        }
    }

    /// Columnsort: random keys (duplicate-heavy and full-range universes),
    /// sizes 8..=512, folds p ∈ {2, 4, 8}.
    #[test]
    fn sort_full_folded_and_reference_agree(
        lg in 3u32..10,
        seed in any::<u64>(),
        small_universe in any::<bool>(),
    ) {
        let n = 1usize << lg;
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let keys: Vec<u64> =
            (0..n).map(|_| if small_universe { next() % 4 } else { next() }).collect();
        let alg = ColumnSort::<u64>::default();
        assert_engine_equivalences(&alg, n, &keys[..], &[2, 4, 8]);
        let (got, _) = network_oblivious::machine::execute(
            &alg,
            n,
            &keys[..],
            &RunOptions::default(),
        )
        .unwrap();
        let mut want = keys.clone();
        want.sort();
        prop_assert_eq!(got, want);
    }

    /// Recursive MM (Thm. 4.2): random wrap-arithmetic operands at n = 64
    /// (the smallest supported 64^e size), wise and unwise variants,
    /// folds p ∈ {2, 4, 8}.
    #[test]
    fn recursive_mm_full_folded_and_reference_agree(seed in any::<u64>(), wise in any::<bool>()) {
        let n = 64usize;
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            WrapU64(state)
        };
        let side = 8; // √64
        let a = Matrix::from_fn(side, |_, _| next());
        let b = Matrix::from_fn(side, |_, _| next());
        let input = MmInput::new(a, b);
        let alg = RecursiveMm::<WrapU64>::new(wise);
        assert_engine_equivalences(&alg, n, &input, &[2, 4, 8]);
    }

    /// Cannon's algorithm on the Morton layout: n ∈ {16, 64, 256},
    /// folds p ∈ {2, 4, 8}; the output must be the semiring product.
    #[test]
    fn cannon_mm_full_folded_and_reference_agree(e in 2u32..5, seed in any::<u64>()) {
        let n = 1usize << (2 * e); // 4^e: 16, 64, 256
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            WrapU64(state)
        };
        let side = 1usize << e;
        let a = Matrix::from_fn(side, |_, _| next());
        let b = Matrix::from_fn(side, |_, _| next());
        let input = MmInput::new(a.clone(), b.clone());
        let alg = CannonMm::<WrapU64>::default();
        assert_engine_equivalences(&alg, n, &input, &[2, 4, 8]);
        let (got, _) = network_oblivious::machine::execute(
            &alg,
            n,
            &input,
            &RunOptions::default(),
        )
        .unwrap();
        prop_assert_eq!(got, a.mul_reference(&b));
    }

    /// 1-D diamond stencil: random inputs, sizes 8..=64, folds p ∈ {2, 4, 8};
    /// the output must match the direct time-stepped reference.
    #[test]
    fn stencil1_full_folded_and_reference_agree(lg in 3u32..7, seed in any::<u64>()) {
        let n = 1usize << lg;
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let xs: Vec<u64> = (0..n).map(|_| next()).collect();
        let alg = DiamondStencil::<WrapSumOp>::default();
        assert_engine_equivalences(&alg, n, &xs[..], &[2, 4, 8]);
        let (got, _) = network_oblivious::machine::execute(
            &alg,
            n,
            &xs[..],
            &RunOptions::default(),
        )
        .unwrap();
        prop_assert_eq!(got, stencil_reference::<WrapSumOp>(&xs));
    }

    /// 2-D octagonal stencil on v = n² VPs: sides 4 and 8, folds
    /// p ∈ {2, 4, 8}; the output must match the direct reference.
    #[test]
    fn stencil2_full_folded_and_reference_agree(lg in 2u32..4, seed in any::<u64>()) {
        let n = 1usize << lg; // grid side; v = n^2 ∈ {16, 64}
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let xs: Vec<u64> = (0..n * n).map(|_| next()).collect();
        let alg = OctaStencil::<WrapSum2Op>::default();
        assert_engine_equivalences(&alg, n, &xs[..], &[2, 4, 8]);
        let (got, _) = network_oblivious::machine::execute(
            &alg,
            n,
            &xs[..],
            &RunOptions::default(),
        )
        .unwrap();
        prop_assert_eq!(got, stencil2_reference::<WrapSum2Op>(&xs, n));
    }
}
