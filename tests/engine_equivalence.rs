//! Workspace-level equivalence property tests for the arena engine on the
//! *real* Section-4 programs (not just toy broadcasts): full-granularity
//! execution, folded execution at `p ∈ {2, 4, 8}`, and the preserved legacy
//! reference engine must all agree on final states and on every analytic
//! fold of the communication trace.

use network_oblivious::algos::fft::{naive_dft, BinaryExchangeFft, Complex};
use network_oblivious::algos::sort::ColumnSort;
use network_oblivious::machine::reference::{run_folded_reference, run_reference};
use network_oblivious::machine::{run, run_folded, NobAlgorithm, RunOptions};
use proptest::prelude::*;

/// Checks the full set of equivalences for one algorithm instance:
/// full run == folded run (states + all fold metrics) == reference engine,
/// for every `p` in `ps`.
fn assert_engine_equivalences<A>(alg: &A, n: usize, input: &A::Input, ps: &[usize])
where
    A: NobAlgorithm,
    A::State: PartialEq + std::fmt::Debug,
{
    let states = alg.init(n, input);
    let prog = alg.build(n);
    let opts = RunOptions::default();
    let full = run(&prog, states.clone(), &opts).unwrap();
    let legacy = run_reference(&prog, states.clone(), &opts).unwrap();
    assert_eq!(full.states, legacy.states, "arena vs reference states, n = {n}");
    assert_eq!(full.trace, legacy.trace, "arena vs reference trace, n = {n}");
    for &p in ps {
        if p > prog.v() {
            continue;
        }
        let folded = run_folded(&prog, states.clone(), p, &opts).unwrap();
        assert_eq!(folded.states, full.states, "full vs folded states at p = {p}, n = {n}");
        let folded_legacy = run_folded_reference(&prog, states.clone(), p, &opts).unwrap();
        assert_eq!(
            folded.trace, folded_legacy.trace,
            "arena vs reference folded trace at p = {p}, n = {n}"
        );
        // The executed folding must reproduce the analytic fold of the
        // full-granularity trace at every sub-granularity.
        let mut q = 2;
        while q <= p {
            assert_eq!(
                folded.trace.fold(q),
                full.trace.fold(q),
                "executed vs analytic fold metrics at p = {p}, q = {q}, n = {n}"
            );
            q *= 2;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// FFT: random signals, sizes 8..=256, folds p ∈ {2, 4, 8}.
    #[test]
    fn fft_full_folded_and_reference_agree(lg in 3u32..9, seed in any::<u64>()) {
        let n = 1usize << lg;
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 2000) as f64 / 1000.0 - 1.0
        };
        let xs: Vec<Complex> = (0..n).map(|_| Complex::new(next(), next())).collect();
        assert_engine_equivalences(&BinaryExchangeFft, n, &xs[..], &[2, 4, 8]);
        // And the algorithm still computes the DFT through the arena engine.
        let (got, _) = network_oblivious::machine::execute(
            &BinaryExchangeFft,
            n,
            &xs[..],
            &RunOptions::default(),
        )
        .unwrap();
        let want = naive_dft(&xs);
        let eps = 1e-9 * (n as f64) * 8.0;
        for (g, w) in got.iter().zip(&want) {
            prop_assert!(g.close_to(*w, eps), "{:?} vs {:?}", g, w);
        }
    }

    /// Columnsort: random keys (duplicate-heavy and full-range universes),
    /// sizes 8..=512, folds p ∈ {2, 4, 8}.
    #[test]
    fn sort_full_folded_and_reference_agree(
        lg in 3u32..10,
        seed in any::<u64>(),
        small_universe in any::<bool>(),
    ) {
        let n = 1usize << lg;
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let keys: Vec<u64> =
            (0..n).map(|_| if small_universe { next() % 4 } else { next() }).collect();
        let alg = ColumnSort::<u64>::default();
        assert_engine_equivalences(&alg, n, &keys[..], &[2, 4, 8]);
        let (got, _) = network_oblivious::machine::execute(
            &alg,
            n,
            &keys[..],
            &RunOptions::default(),
        )
        .unwrap();
        let mut want = keys.clone();
        want.sort();
        prop_assert_eq!(got, want);
    }
}
