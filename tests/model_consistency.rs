//! Integration: cross-crate model consistency on real algorithm traces.
//!
//! * Lemma 3.1 holds for every recorded trace (it is a theorem about the
//!   metric definitions);
//! * `H(n, p, σ)` coincides with `D` on the flat machine `g = 1, ℓ = σ`
//!   (the Section-2 identification of the evaluation model with BSP);
//! * the wiseness/fullness orderings of Section 5;
//! * the network simulators deliver what the presets promise (shape-level).

use network_oblivious::algos::fft::RecursiveFft;
use network_oblivious::algos::mm::standard::RecursiveMm;
use network_oblivious::algos::mm::MmInput;
use network_oblivious::algos::semiring::{Matrix, WrapU64};
use network_oblivious::algos::sort::ColumnSort;
use network_oblivious::core::theorem::lemma_3_1_holds;
use network_oblivious::core::{fullness, machines, wiseness, CommTrace};
use network_oblivious::machine::{execute, RunOptions};
use network_oblivious::networks::{fit_dbsp, Hypercube, Mesh2D};

fn traces() -> Vec<(String, CommTrace)> {
    let mut out = Vec::new();
    let s = 8usize;
    let input = MmInput::new(
        Matrix::from_fn(s, |i, j| WrapU64((i * 17 + j) as u64)),
        Matrix::from_fn(s, |i, j| WrapU64((i + j * 13) as u64)),
    );
    let (_, t) =
        execute(&RecursiveMm::<WrapU64>::default(), 64, &input, &RunOptions::default()).unwrap();
    out.push(("mm".into(), t));
    let xs: Vec<_> = (0..256)
        .map(|t| network_oblivious::algos::fft::Complex::new(t as f64, -(t as f64)))
        .collect();
    let (_, t) = execute(&RecursiveFft::default(), 256, &xs[..], &RunOptions::default()).unwrap();
    out.push(("fft".into(), t));
    let keys: Vec<u64> = (0..128u64).rev().collect();
    let (_, t) =
        execute(&ColumnSort::<u64>::default(), 128, &keys[..], &RunOptions::default()).unwrap();
    out.push(("sort".into(), t));
    out
}

#[test]
fn lemma_3_1_holds_on_all_algorithm_traces() {
    for (name, t) in traces() {
        assert!(lemma_3_1_holds(&t, t.v()), "Lemma 3.1 violated by {name}");
    }
}

#[test]
fn evaluation_model_is_flat_dbsp_on_all_traces() {
    for (name, t) in traces() {
        for p in [2usize, 16, 64] {
            for sigma in [0.0, 3.5, 64.0] {
                let h = t.comm_complexity(p, sigma);
                let d = t.comm_time(&machines::evaluation(p, sigma));
                assert!((h - d).abs() < 1e-9, "{name}: H != D at p={p}, sigma={sigma}");
            }
        }
    }
}

#[test]
fn wise_algorithms_are_full() {
    // Section 5: (Θ(1), p)-wiseness implies (Θ(1), p)-fullness when every
    // superstep communicates at least one message.
    for (name, t) in traces() {
        let p = t.v();
        let alpha = wiseness::alpha_max(&t, p).alpha;
        let gamma = fullness::gamma_max(&t, p).gamma;
        assert!(alpha > 0.05, "{name}: alpha = {alpha}");
        assert!(gamma >= alpha * 0.5, "{name}: gamma {gamma} << alpha {alpha}");
    }
}

#[test]
fn fitted_networks_match_preset_shapes() {
    // Mesh bandwidth decays by ~2 per level pair (√ of cluster size);
    // hypercube stays within a small band.
    let mesh = Mesh2D::new(64);
    let fit = fit_dbsp(&mesh, 11);
    let preset = machines::mesh2d(64);
    for i in 0..5 {
        let shape_fit = fit.machine.g[i] / fit.machine.g[i + 1].max(1e-9);
        let shape_preset = preset.g[i] / preset.g[i + 1];
        assert!(
            shape_fit / shape_preset < 3.0 && shape_preset / shape_fit < 3.0,
            "mesh level {i}: fitted decay {shape_fit} vs preset {shape_preset}"
        );
    }
    let cube = Hypercube::new(64);
    let fit = fit_dbsp(&cube, 11);
    let spread = fit.machine.g[0] / fit.machine.g[5].max(1e-9);
    assert!(spread < 5.0, "hypercube g spread {spread}");
}
