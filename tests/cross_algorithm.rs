//! Integration: every algorithm in the repository computes the right answer
//! at full granularity AND under folding, with folded metrics agreeing with
//! the analytic fold of the full trace — the Section-2 folding semantics,
//! end to end.

use network_oblivious::algos::broadcast::{AwareBroadcast, ObliviousBroadcast};
use network_oblivious::algos::fft::{naive_dft, BinaryExchangeFft, Complex, RecursiveFft};
use network_oblivious::algos::mm::cannon::CannonMm;
use network_oblivious::algos::mm::space::SpaceEfficientMm;
use network_oblivious::algos::mm::standard::RecursiveMm;
use network_oblivious::algos::mm::MmInput;
use network_oblivious::algos::primitives::{CombineFn, MatrixTranspose, TreeReduce, TreeScan};
use network_oblivious::algos::semiring::{Matrix, WrapU64};
use network_oblivious::algos::sort::{BitonicSort, ColumnSort};
use network_oblivious::algos::stencil::{
    stencil_reference, DiamondStencil, NaiveStencil, WrapSumOp,
};
use network_oblivious::algos::stencil2::{stencil2_reference, NaiveStencil2, OctaStencil, WrapSum2Op};
use network_oblivious::machine::{execute, execute_folded, NobAlgorithm, RunOptions};

fn xorshift(seed: u64) -> impl FnMut() -> u64 {
    let mut state = seed | 1;
    move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    }
}

/// Runs `alg` at full granularity and at every power-of-two folding,
/// asserting identical outputs and consistent metrics.
fn folding_invariant<A>(alg: &A, n: usize, input: &A::Input)
where
    A: NobAlgorithm,
    A::Output: PartialEq + std::fmt::Debug,
{
    let v = alg.v(n);
    let (full, full_trace) = execute(alg, n, input, &RunOptions::default()).unwrap();
    let mut p = 2usize;
    while p <= v {
        let (out, trace) = execute_folded(alg, n, input, p, &RunOptions::default()).unwrap();
        assert_eq!(out, full, "{}: output diverges at p = {p}", alg.name());
        let mut q = 2;
        while q <= p {
            assert_eq!(
                trace.fold(q),
                full_trace.fold(q),
                "{}: folded metrics diverge at p = {p}, q = {q}",
                alg.name()
            );
            q *= 2;
        }
        p *= 4;
    }
}

#[test]
fn mm_algorithms_agree_and_fold() {
    let mut rng = xorshift(1);
    let s = 8usize;
    let n = s * s;
    let a = Matrix::from_fn(s, |_, _| WrapU64(rng() % 997));
    let b = Matrix::from_fn(s, |_, _| WrapU64(rng() % 997));
    let input = MmInput::new(a.clone(), b.clone());
    let expect = a.mul_reference(&b);

    let (r1, _) =
        execute(&RecursiveMm::<WrapU64>::default(), n, &input, &RunOptions::default()).unwrap();
    let (r2, _) =
        execute(&SpaceEfficientMm::<WrapU64>::default(), n, &input, &RunOptions::default())
            .unwrap();
    let (r3, _) =
        execute(&CannonMm::<WrapU64>::default(), n, &input, &RunOptions::default()).unwrap();
    assert_eq!(r1, expect);
    assert_eq!(r2, expect);
    assert_eq!(r3, expect);

    folding_invariant(&RecursiveMm::<WrapU64>::default(), n, &input);
    folding_invariant(&SpaceEfficientMm::<WrapU64>::default(), n, &input);
    folding_invariant(&CannonMm::<WrapU64>::default(), n, &input);
}

#[test]
fn fft_algorithms_agree_and_fold() {
    let n = 128usize;
    let xs: Vec<Complex> = (0..n)
        .map(|t| {
            let th = 2.0 * std::f64::consts::PI * (t as f64) / n as f64;
            Complex::new(th.cos(), 0.5 * (2.0 * th).sin())
        })
        .collect();
    let want = naive_dft(&xs);
    let (got, _) = execute(&RecursiveFft::default(), n, &xs[..], &RunOptions::default()).unwrap();
    for (g, w) in got.iter().zip(&want) {
        assert!(g.close_to(*w, 1e-6), "{g:?} vs {w:?}");
    }
    let (got, _) = execute(&BinaryExchangeFft, n, &xs[..], &RunOptions::default()).unwrap();
    for (g, w) in got.iter().zip(&want) {
        assert!(g.close_to(*w, 1e-6));
    }
    // Folding invariants need PartialEq outputs; compare via bit patterns.
    let alg = RecursiveFft::default();
    let v = alg.v(n);
    let (full, _) = execute(&alg, n, &xs[..], &RunOptions::default()).unwrap();
    let mut p = 2usize;
    while p <= v {
        let (out, _) = execute_folded(&alg, n, &xs[..], p, &RunOptions::default()).unwrap();
        for (a, b) in out.iter().zip(&full) {
            assert!(a.close_to(*b, 0.0), "fft folding not bitwise identical at p = {p}");
        }
        p *= 4;
    }
}

#[test]
fn sort_algorithms_agree_and_fold() {
    let mut rng = xorshift(2);
    let n = 256usize;
    let keys: Vec<u64> = (0..n).map(|_| rng() % 10_000).collect();
    let mut want = keys.clone();
    want.sort();
    let (got, _) =
        execute(&ColumnSort::<u64>::default(), n, &keys[..], &RunOptions::default()).unwrap();
    assert_eq!(got, want);
    let (got, _) =
        execute(&BitonicSort::<u64>::default(), n, &keys[..], &RunOptions::default()).unwrap();
    assert_eq!(got, want);
    folding_invariant(&ColumnSort::<u64>::default(), n, &keys[..]);
    folding_invariant(&BitonicSort::<u64>::default(), n, &keys[..]);
}

#[test]
fn stencils_agree_and_fold() {
    let n = 64usize;
    let xs: Vec<u64> = (0..n as u64).map(|x| x * 31 % 101).collect();
    let want = stencil_reference::<WrapSumOp>(&xs);
    let (got, _) =
        execute(&DiamondStencil::<WrapSumOp>::default(), n, &xs[..], &RunOptions::default())
            .unwrap();
    assert_eq!(got, want);
    let (got, _) =
        execute(&NaiveStencil::<WrapSumOp>::default(), n, &xs[..], &RunOptions::default())
            .unwrap();
    assert_eq!(got, want);
    folding_invariant(&DiamondStencil::<WrapSumOp>::default(), n, &xs[..]);

    let n2 = 8usize;
    let xs2: Vec<u64> = (0..(n2 * n2) as u64).map(|x| x * 7 % 53).collect();
    let want2 = stencil2_reference::<WrapSum2Op>(&xs2, n2);
    let (got2, _) =
        execute(&OctaStencil::<WrapSum2Op>::default(), n2, &xs2[..], &RunOptions::default())
            .unwrap();
    assert_eq!(got2, want2);
    let (got2, _) =
        execute(&NaiveStencil2::<WrapSum2Op>::default(), n2, &xs2[..], &RunOptions::default())
            .unwrap();
    assert_eq!(got2, want2);
    folding_invariant(&OctaStencil::<WrapSum2Op>::default(), n2, &xs2[..]);
}

#[test]
fn broadcast_and_primitives_fold() {
    let n = 256usize;
    folding_invariant(&ObliviousBroadcast, n, &42u64);
    folding_invariant(&AwareBroadcast { kappa: 8 }, n, &42u64);

    fn add(a: &u64, b: &u64) -> u64 {
        a + b
    }
    let xs: Vec<u64> = (0..n as u64).collect();
    folding_invariant(&TreeReduce { op: add as CombineFn<u64> }, n, &xs[..]);
    folding_invariant(&TreeScan { op: add as CombineFn<u64> }, n, &xs[..]);
    let fs: Vec<f64> = (0..64).map(|k| k as f64).collect();
    folding_invariant(&MatrixTranspose, 64, &fs[..]);
}
