//! # network-oblivious
//!
//! An executable implementation of Bilardi, Pietracaprina, Pucci, Scquizzato
//! and Silvestri, *Network-Oblivious Algorithms* (IPDPS'07; J. ACM 63(1),
//! 2016): the three-model framework, the optimality theorems, the Section-4
//! algorithm suite, and the network simulators that ground the D-BSP
//! execution model.
//!
//! A network-oblivious algorithm is specified once, on a machine whose only
//! parameter is the input size, and then runs — *unchanged* — on machines
//! with any processor count and any bandwidth/latency hierarchy. This crate
//! re-exports the four subsystems:
//!
//! * [`core`] — models, folding, communication metrics (`H`, `D`),
//!   wiseness/fullness, the optimality theorems, lower bounds, machine
//!   presets;
//! * [`machine`] — the instrumented superstep VM (full-granularity and
//!   folded execution, the ascend–descend protocol);
//! * [`algos`] — matrix multiplication, FFT, Columnsort, stencils,
//!   broadcast, primitives, and the class-C baselines;
//! * [`networks`] — packet-level mesh/torus/array/hypercube simulators and
//!   D-BSP parameter fitting.
//!
//! ## A complete round trip
//!
//! ```
//! use network_oblivious::algos::mm::standard::RecursiveMm;
//! use network_oblivious::algos::mm::MmInput;
//! use network_oblivious::algos::semiring::{Matrix, WrapU64};
//! use network_oblivious::core::{lower_bounds, machines, wiseness};
//! use network_oblivious::machine::{execute, execute_folded, RunOptions};
//!
//! // An n-MM instance (n = 64 entries per matrix).
//! let a = Matrix::from_fn(8, |i, j| WrapU64((3 * i + j) as u64));
//! let b = Matrix::from_fn(8, |i, j| WrapU64((i + 5 * j) as u64));
//! let input = MmInput::new(a.clone(), b.clone());
//!
//! // 1. Execute the oblivious algorithm on the specification model M(64).
//! let alg = RecursiveMm::<WrapU64>::default();
//! let (product, trace) = execute(&alg, 64, &input, &RunOptions::default()).unwrap();
//! assert_eq!(product, a.mul_reference(&b));
//!
//! // 2. One run yields the metrics of every folding (Eq. 1).
//! let h = trace.comm_complexity(16, 2.0);
//! assert!(h / lower_bounds::mm(64, 16, 2.0) < 16.0); // Θ(1)-optimal shape
//!
//! // 3. …and the communication time on any D-BSP machine (Eq. 2).
//! let d = trace.comm_time(&machines::mesh2d(16));
//! assert!(d > 0.0);
//!
//! // 4. The algorithm is (Θ(1), v)-wise, as Theorem 4.2 claims…
//! assert!(wiseness::alpha_max(&trace, 64).alpha >= 0.25);
//!
//! // 5. …and folding actually runs: same product on 8 processors.
//! let (folded, _) = execute_folded(&alg, 64, &input, 8, &RunOptions::default()).unwrap();
//! assert_eq!(folded, product);
//! ```
//!
//! See `DESIGN.md` for the system inventory, `EXPERIMENTS.md` for the
//! paper-vs-measured record, and `examples/` for domain scenarios.

pub use nob_algos as algos;
pub use nob_core as core;
pub use nob_machine as machine;
pub use nob_networks as networks;
